"""Multinomial diffusion for one-hot categorical features.

Hoogeboom et al. (2021) define a categorical forward process with uniform
transition kernels: at step ``t`` a category keeps its value with probability
``1 - beta_t`` and is resampled uniformly otherwise.  The closed-form
marginal and posterior are both simple mixtures of the one-hot vector and the
uniform distribution, which keeps every operation a dense numpy expression.

TabDDPM trains the denoiser to predict the distribution of ``x_0`` from
``x_t`` (via a cross-entropy loss, handled by the caller) and samples the
reverse chain through the posterior evaluated at the predicted ``x_0``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.tabddpm.schedule import DiffusionSchedule
from repro.models.width_buckets import bounded_scratch, even_row_chunks


class MultinomialDiffusion:
    """Uniform-kernel categorical diffusion over ``n_categories`` classes."""

    def __init__(self, n_categories: int, schedule: DiffusionSchedule):
        if n_categories < 2:
            raise ValueError("n_categories must be at least 2")
        self.n_categories = int(n_categories)
        self.schedule = schedule

    @property
    def n_steps(self) -> int:
        return self.schedule.n_steps

    # -- forward process -------------------------------------------------------------
    def q_probs(self, x0_onehot: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Marginal ``q(x_t | x_0)`` as a probability matrix, shape ``(n, K)``."""
        x0 = np.asarray(x0_onehot, dtype=np.float64)
        t = np.asarray(t, dtype=np.int64)
        keep = self.schedule.alphas_bar[t][:, None]
        return keep * x0 + (1.0 - keep) / self.n_categories

    def q_sample(self, x0_onehot: np.ndarray, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one-hot ``x_t`` from the forward marginal."""
        probs = self.q_probs(x0_onehot, t)
        return self._sample_onehot(probs, rng)

    # -- reverse process --------------------------------------------------------------
    def posterior_probs(
        self, x_t_onehot: np.ndarray, x0_probs: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """``q(x_{t-1} | x_t, x_0)`` with ``x_0`` given as a probability vector.

        Both factors of the (unnormalised) posterior are mixtures of a one-hot
        vector and the uniform distribution:
        ``q(x_{t-1}|x_t) ∝ alpha_t x_t + (1-alpha_t)/K`` and
        ``q(x_{t-1}|x_0) ∝ alpha_bar_{t-1} x_0 + (1-alpha_bar_{t-1})/K``.
        """
        x_t = np.asarray(x_t_onehot, dtype=np.float64)
        x0 = np.asarray(x0_probs, dtype=np.float64)
        t = np.asarray(t, dtype=np.int64)
        sched = self.schedule
        alpha_t = sched.alphas[t][:, None]
        alpha_bar_prev = sched.alphas_bar_prev[t][:, None]
        factor_xt = alpha_t * x_t + (1.0 - alpha_t) / self.n_categories
        factor_x0 = alpha_bar_prev * x0 + (1.0 - alpha_bar_prev) / self.n_categories
        unnormalised = factor_xt * factor_x0
        return unnormalised / np.maximum(unnormalised.sum(axis=1, keepdims=True), 1e-12)

    def p_sample_step(
        self,
        x_t_onehot: np.ndarray,
        t: int,
        x0_probs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One reverse step: sample ``x_{t-1}`` from the posterior at predicted x0."""
        n = x_t_onehot.shape[0]
        t_vector = np.full(n, t, dtype=np.int64)
        if t == 0:
            probs = np.asarray(x0_probs, dtype=np.float64)
            probs = probs / np.maximum(probs.sum(axis=1, keepdims=True), 1e-12)
        else:
            probs = self.posterior_probs(x_t_onehot, x0_probs, t_vector)
        return self._sample_onehot(probs, rng)

    def sample(
        self,
        n: int,
        x0_model: Callable[[np.ndarray, np.ndarray], np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Full reverse chain from the uniform distribution.

        ``x0_model(x_t_onehot, t_vector)`` must return x0 probability vectors.
        """
        uniform = np.full((n, self.n_categories), 1.0 / self.n_categories)
        x = self._sample_onehot(uniform, rng)
        for t in reversed(range(self.n_steps)):
            t_vector = np.full(n, t, dtype=np.int64)
            x0_probs = x0_model(x, t_vector)
            x = self.p_sample_step(x, t, x0_probs, rng)
        return x

    # -- helpers -------------------------------------------------------------------------
    @staticmethod
    def _sample_onehot(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorised categorical sampling returning one-hot rows."""
        cumulative = np.cumsum(probs, axis=1)
        cumulative /= np.maximum(cumulative[:, -1:], 1e-12)
        draws = rng.random((probs.shape[0], 1))
        chosen = (draws < cumulative).argmax(axis=1)
        onehot = np.zeros_like(probs)
        onehot[np.arange(probs.shape[0]), chosen] = 1.0
        return onehot


class MultinomialBlockDiffusion:
    """All categorical blocks of an encoded table, diffused in one shot.

    The per-block :class:`MultinomialDiffusion` draws the forward sample of
    each one-hot block with its own numpy calls, which makes a TabDDPM
    training step loop over categorical features in Python.  This class packs
    every block into a zero-padded ``(rows, blocks, max_categories)`` cube so
    one ``cumsum`` + one comparison samples all blocks at once.

    Bit-for-bit equivalence with the sequential per-block path is preserved:

    * the padded tail of each lane is exactly zero, so the in-lane cumulative
      sums (and the normalising last column) are unchanged;
    * the uniform draws are taken as one ``rng.random((blocks, rows))``
      matrix, which consumes the generator stream in the same order as the
      sequential per-block ``rng.random((rows, 1))`` calls.
    """

    #: Blocks at least this wide take the per-block reverse path: NumPy's
    #: pairwise summation starts at 8 elements, so only narrower blocks may
    #: have their softmax/posterior sums re-expressed as sequential lane
    #: accumulations without changing the rounding.
    _LANE_WIDTH_LIMIT = 8

    #: The *relaxed* reverse step has no rounding contract, so it lane-batches
    #: much wider blocks (realistic tables carry 8-30-category site/user/task
    #: columns, and the per-block loop dominates fast-mode sampling there).
    #: Blocks at or beyond this width stay on the per-block path: the padded
    #: cube would mostly hold padding, and such blocks are rare enough that
    #: one dense pass each is already efficient.
    _FAST_LANE_WIDTH_LIMIT = 32

    def __init__(self, spans: Sequence[Tuple[int, int]], schedule: DiffusionSchedule):
        """``spans`` are the ``(start, stop)`` column ranges of the one-hot
        blocks inside the encoded matrix, in encoding order."""
        self.schedule = schedule
        self.spans = [(int(a), int(b)) for a, b in spans]
        widths = np.array([b - a for a, b in self.spans], dtype=np.intp)
        if widths.size and widths.min() < 2:
            raise ValueError("every categorical block needs at least 2 categories")
        self.n_blocks = len(self.spans)
        self.max_width = int(widths.max()) if widths.size else 0
        self.starts = np.array([a for a, _ in self.spans], dtype=np.intp)
        self.widths = widths
        # Gather index + validity mask for the padded cube; invalid positions
        # point at the block start and are zeroed through the mask.
        lane = np.arange(self.max_width, dtype=np.intp)[None, :]
        self.valid = (lane < widths[:, None]).astype(np.float64)
        self.gather = self.starts[:, None] + np.where(lane < widths[:, None], lane, 0)
        self._gather_flat = self.gather.ravel()
        self.columns = (
            np.concatenate([np.arange(a, b, dtype=np.intp) for a, b in self.spans])
            if self.spans else np.empty(0, dtype=np.intp)
        )
        # The reverse chain groups same-width narrow blocks so every step is a
        # handful of unpadded ``(rows, blocks, width)`` lane operations; wide
        # blocks (rare, e.g. a computing-site column) keep the per-block path,
        # which is already efficient at their size.
        self._width_groups: List[Tuple[int, np.ndarray, np.ndarray, List[np.ndarray]]] = []
        for w in sorted({int(v) for v in widths if v < self._LANE_WIDTH_LIMIT}):
            gidx = np.nonzero(widths == w)[0]
            gcols = np.concatenate([np.arange(*self.spans[b], dtype=np.intp) for b in gidx])
            lane_cols = [self.starts[gidx] + j for j in range(w)]
            self._width_groups.append((w, gidx, gcols, lane_cols))
        self._wide_blocks = [b for b in range(self.n_blocks)
                             if widths[b] >= self._LANE_WIDTH_LIMIT]
        # Zeroing the one-hot columns is a cheap slice write when they tile a
        # contiguous range of the encoded matrix (the common layout).
        if self.columns.size and np.array_equal(
            self.columns, np.arange(self.columns[0], self.columns[-1] + 1)
        ):
            self._col_span: Optional[Tuple[int, int]] = (int(self.columns[0]), int(self.columns[-1]) + 1)
        else:
            self._col_span = None
        #: reverse-step scratch buffers, keyed by (width, blocks, chunk rows)
        self._buffers: dict = {}

    def __getstate__(self):
        # Scratch buffers and the lazily-derived serving tables are
        # request-sized; both are regrown on first use after unpickling.
        state = dict(self.__dict__)
        state["_buffers"] = {}
        state.pop("_fast_tables_", None)
        return state

    def _group_scratch(self, w: int, m: int, nc: int, dtype: np.dtype) -> dict:
        # Lane-major (width, rows, blocks) scratch: every per-lane operation
        # runs over a fully contiguous (rows, blocks) plane, avoiding NumPy's
        # slow tiny-inner-axis loops.  The scratch dtype follows the
        # prediction's (float64 on the exact chain, float32 on the relaxed
        # serving chain, which halves the bandwidth of every pass).
        return bounded_scratch(
            self._buffers,
            (w, m, nc, dtype),
            lambda: {
                "g": np.empty((w, nc, m), dtype=dtype),
                "fx": np.empty((w, nc, m), dtype=dtype),
                "mx": np.empty((nc, m), dtype=dtype),
                "tot": np.empty((nc, m), dtype=dtype),
                "dg": np.empty((nc, m), dtype=dtype),
                "cnt": np.empty((nc, m), dtype=np.intp),
                "flat": np.arange(nc * m).reshape(nc, m),
            },
        )

    def _zero_blocks(self, out: np.ndarray) -> None:
        if self._col_span is not None:
            out[:, self._col_span[0] : self._col_span[1]] = 0.0
        else:
            out[:, self.columns] = 0.0

    def q_sample_into(
        self,
        out: np.ndarray,
        x0: np.ndarray,
        t: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Write forward samples of every block into ``out`` (same layout as ``x0``)."""
        if not self.n_blocks:
            return
        n = x0.shape[0]
        t = np.asarray(t, dtype=np.int64)
        keep = self.schedule.alphas_bar[t][:, None, None]
        x0_cube = x0[:, self._gather_flat].reshape(n, self.n_blocks, self.max_width)
        probs = keep * x0_cube + (1.0 - keep) / self.widths[None, :, None]
        # Padded lanes are zeroed here, so the cumulative sums below match the
        # unpadded per-block ones exactly; x0 needs no separate masking.
        probs *= self.valid
        cumulative = np.cumsum(probs, axis=2)
        cumulative /= np.maximum(cumulative[:, :, -1:], 1e-12)
        draws = rng.random((self.n_blocks, n)).T[:, :, None]
        chosen = (draws < cumulative).argmax(axis=2)
        out[:, self.columns] = 0.0
        out[np.arange(n)[:, None], self.starts[None, :] + chosen] = 1.0

    # -- batched reverse chain ---------------------------------------------------

    def chosen_from(self, state: np.ndarray) -> np.ndarray:
        """Category index of every one-hot block in ``state``, shape ``(n, B)``."""
        n = state.shape[0]
        chosen = np.empty((n, self.n_blocks), dtype=np.intp)
        for w, gidx, gcols, _lane_cols in self._width_groups:
            seg = np.take(state, gcols, axis=1).reshape(n, gidx.size, w)
            chosen[:, gidx] = np.argmax(seg, axis=2)
        for b in self._wide_blocks:
            start, stop = self.spans[b]
            chosen[:, b] = np.argmax(state[:, start:stop], axis=1)
        return chosen

    def prior_sample_into(self, out: np.ndarray, rng: np.random.Generator) -> Optional[np.ndarray]:
        """Uniform-prior one-hot init of every block, in place on ``out``.

        Bit- and stream-identical to looping the blocks and drawing each from
        ``MultinomialDiffusion._sample_onehot(np.full((n, K), 1 / K), rng)``:
        the per-block uniform CDF row is the same for every data row, so one
        ``searchsorted`` over the shared row replaces the cumulative compare,
        and ``rng.random((blocks, rows))`` consumes the stream in the order of
        the sequential per-block ``rng.random((rows, 1))`` calls.  Returns the
        chosen category matrix for :meth:`p_sample_into`.
        """
        if not self.n_blocks:
            return None
        n = out.shape[0]
        draws = rng.random((self.n_blocks, n))
        chosen = np.empty((n, self.n_blocks), dtype=np.intp)
        for width in sorted(set(int(v) for v in self.widths)):
            # Same CDF row as the seed per-block path (cumsum of 1/K then a
            # normalising division) shared by every block of this width.
            cdf = np.cumsum(np.full(width, 1.0 / width))
            cdf /= np.maximum(cdf[-1:], 1e-12)
            # (draw < cdf).argmax == count of cdf entries <= draw: the CDF is
            # increasing and its last entry is exactly 1.0 > draw.
            blocks = np.nonzero(self.widths == width)[0]
            idx = np.searchsorted(cdf[:-1], draws[blocks], side="right")
            chosen[:, blocks] = idx.T
        self._zero_blocks(out)
        out[np.arange(n)[:, None], self.starts[None, :] + chosen] = 1.0
        return chosen

    def p_sample_into(
        self,
        out: np.ndarray,
        prediction: np.ndarray,
        t: int,
        rng: np.random.Generator,
        prev_chosen: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """One reverse step for every block at once, in place on ``out``.

        Bit- and stream-identical to the sequential per-block chain (softmax
        of the block logits, posterior at the predicted ``x0``, categorical
        draw).  Same-width narrow blocks are processed as one unpadded
        ``(rows, blocks, width)`` segment whose reductions run lane by lane —
        NumPy sums fewer than 8 elements sequentially, so the accumulation
        order (and rounding) matches the per-block ``sum(axis=1)`` exactly;
        maxima are order-insensitive.  ``x_t`` enters the posterior only
        through ``alpha * x_t + beta`` with one-hot ``x_t``, which is
        reproduced exactly by filling ``beta`` and scattering ``alpha + beta``
        at the previously chosen categories (``alpha * 0 + beta`` and
        ``alpha * 1 + beta`` round to precisely those values).  Wide blocks
        keep the verbatim per-block computation; one ``(blocks, rows)``
        uniform matrix feeds every block in block order, preserving the seed
        stream of sequential ``rng.random((rows, 1))`` draws.

        ``prev_chosen`` is the matrix returned by the previous step (or
        :meth:`prior_sample_into`); passing it asserts that the blocks of
        ``out`` are exactly one-hot at those positions (which also lets the
        final rewrite clear just those entries).  When omitted it is
        recovered from ``out`` and the blocks are cleared in full.  Returns
        the new chosen matrix.
        """
        if not self.n_blocks:
            return None
        n = out.shape[0]
        # When the caller supplies ``prev_chosen`` the blocks of ``out`` are
        # known to be exactly one-hot at those positions, so clearing them is
        # two scatters instead of a full rewrite of every block column.
        onehot_prev = prev_chosen is not None
        if prev_chosen is None and t != 0 and self._width_groups:
            prev_chosen = self.chosen_from(out)
        draws = rng.random((self.n_blocks, n))
        chosen = np.empty((n, self.n_blocks), dtype=np.intp)
        # Every operation below is strictly row-wise, so processing the rows
        # in cache-sized chunks changes no value — it just keeps the ~17
        # passes over the block segment in cache instead of main memory.
        chunk = even_row_chunks(n, 8 * self.columns.size, 1 << 22)
        for r0 in range(0, n, chunk):
            r1 = min(n, r0 + chunk)
            self._p_sample_chunk(
                out[r0:r1],
                prediction[r0:r1],
                t,
                draws[:, r0:r1],
                None if prev_chosen is None else prev_chosen[r0:r1],
                chosen[r0:r1],
                onehot_prev,
            )
        return chosen

    # -- relaxed serving reverse step ---------------------------------------------

    def _fast_tables(self):
        """Width-bucketed lane-major gather tables for the relaxed reverse step.

        Returns ``(groups, huge)``: each group is ``(block ids, pad width,
        per-lane gather columns, per-lane padded block ids, widths)`` for one
        width bucket — the narrow bucket (width < 8, matching the exact
        path's lane grouping) and the wide bucket (8 to
        ``_FAST_LANE_WIDTH_LIMIT - 1``), which the exact kernel must leave on
        the per-block path to preserve pairwise-summation rounding but the
        relaxed kernel is free to batch.  Bucketing keeps the padding waste
        bounded: each cube pads to its own bucket's maximum, not the table
        maximum.  Lane ``j`` of a block narrower than ``j+1`` gathers the
        block's first column (a harmless duplicate: it never exceeds the
        block maximum) and is zeroed after the exp.  ``huge`` lists the
        blocks at or beyond the limit, which keep the per-block path.  Built
        lazily so instances restored from older fits work unchanged.
        """
        cached = getattr(self, "_fast_tables_", None)
        if cached is not None:
            return cached
        from repro.models.width_buckets import build_width_bucket_tables

        tables = build_width_bucket_tables(
            self.widths,
            self.starts,
            narrow_limit=self._LANE_WIDTH_LIMIT,
            fast_limit=self._FAST_LANE_WIDTH_LIMIT,
        )
        self._fast_tables_ = tables
        return tables

    def _fast_scratch(self, gi: int, nb: int, pad: int, nc: int, dtype: np.dtype) -> dict:
        return bounded_scratch(
            self._buffers,
            ("fast", gi, nb, pad, nc, dtype),
            lambda: {
                "cube": np.empty((pad, nc, nb), dtype=dtype),
                "mx": np.empty((nc, nb), dtype=dtype),
                "tot": np.empty((nc, nb), dtype=dtype),
                "dg": np.empty((nc, nb), dtype=dtype),
                "cmp": np.empty((nc, nb), dtype=bool),
                "cnt": np.empty((nc, nb), dtype=np.intp),
                "idx": np.empty((nc, nb), dtype=np.intp),
                "idx_base": np.arange(nc, dtype=np.intp)[:, None] * nb
                + np.arange(nb, dtype=np.intp)[None, :],
            },
        )

    def p_sample_fast_into(
        self,
        out: np.ndarray,
        prediction: np.ndarray,
        t: int,
        rng: np.random.Generator,
        prev_chosen: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """One reverse step for every block, relaxed serving variant.

        Draws each block's category from the *same posterior distribution* as
        :meth:`p_sample_into` but with the stream/bit contract waived, which
        removes most of the per-step passes: the blocks evaluate as
        zero-padded ``(pad, rows, blocks)`` width-bucket cubes whose
        reductions run as single whole-cube numpy calls, probabilities stay
        unnormalised (the uniform draw is scaled by the total mass instead of
        normalising every lane), and the posterior's ``x_t`` factor is
        applied as a scatter multiply at the previously chosen categories
        only.  Unlike the exact kernel — whose lane grouping must stop at
        8-wide blocks to preserve NumPy's pairwise-summation rounding — the
        relaxed kernel lane-batches everything up to
        ``_FAST_LANE_WIDTH_LIMIT``-wide blocks; only blocks beyond that keep
        the per-block path.  Used by ``sampling_mode="fast"``; validated
        distributionally (chi-squared) in ``tests/test_serving_modes.py``.
        """
        if not self.n_blocks:
            return None
        n = out.shape[0]
        onehot_prev = prev_chosen is not None
        if prev_chosen is None and t != 0:
            prev_chosen = self.chosen_from(out)
        # Relaxed mode: float32 uniforms are cheaper to draw and to compare
        # against the float32 CDFs (a different stream from the exact chain,
        # which this mode does not promise to reproduce).
        draws = rng.random((self.n_blocks, n), dtype=np.float32)
        chosen = np.empty((n, self.n_blocks), dtype=np.intp)
        # Cache budget in *bytes* (itemsize-aware, so float32 serving states
        # fit twice the rows per pass).  The relaxed kernel's whole-cube
        # passes like tighter chunks than the exact kernel's plane loops: a
        # 1 MiB row budget measured ~10% faster than the exact path's 4 MiB
        # at serving sizes.
        chunk = even_row_chunks(
            n, prediction.dtype.itemsize * self.columns.size, 1 << 20
        )
        for r0 in range(0, n, chunk):
            r1 = min(n, r0 + chunk)
            self._p_sample_fast_chunk(
                out[r0:r1],
                prediction[r0:r1],
                t,
                draws[:, r0:r1],
                None if prev_chosen is None else prev_chosen[r0:r1],
                chosen[r0:r1],
            )
        # One-hot state update through reused flat-index buffers (the serving
        # state is contiguous): clears the previous categories, sets the new.
        if out.flags.c_contiguous:
            sc = bounded_scratch(
                self._buffers,
                ("scatter", n, out.shape[1]),
                lambda: {
                    "idx": np.empty((n, self.n_blocks), dtype=np.intp),
                    "rowoff": np.arange(n, dtype=np.intp)[:, None] * out.shape[1],
                },
            )
            flat = out.reshape(-1)
            idx, rowoff = sc["idx"], sc["rowoff"]
            if onehot_prev:
                np.add(prev_chosen, self.starts[None, :], out=idx)
                idx += rowoff
                flat[idx] = 0.0
            else:
                self._zero_blocks(out)
            np.add(chosen, self.starts[None, :], out=idx)
            idx += rowoff
            flat[idx] = 1.0
            return chosen
        rows = np.arange(n)[:, None]
        if onehot_prev:
            out[rows, self.starts[None, :] + prev_chosen] = 0.0
        else:
            self._zero_blocks(out)
        out[rows, self.starts[None, :] + chosen] = 1.0
        return chosen

    def _p_sample_fast_chunk(
        self,
        out: np.ndarray,
        prediction: np.ndarray,
        t: int,
        draws: np.ndarray,
        prev_chosen: Optional[np.ndarray],
        chosen: np.ndarray,
    ) -> None:
        n = out.shape[0]
        groups, huge = self._fast_tables()
        for gi, (gids, pad, lane_cols, pad_blocks, gwidths) in enumerate(groups):
            self._fast_cube_group(
                prediction, t, draws, prev_chosen, chosen,
                gi, gids, pad, lane_cols, pad_blocks, gwidths, n,
            )
        self._p_sample_wide_blocks(out, prediction, t, draws, chosen, blocks=huge)

    def _fast_cube_group(
        self,
        prediction: np.ndarray,
        t: int,
        draws: np.ndarray,
        prev_chosen: Optional[np.ndarray],
        chosen: np.ndarray,
        gi: int,
        gids: np.ndarray,
        pad: int,
        lane_cols,
        pad_blocks,
        gwidths: np.ndarray,
        n: int,
    ) -> None:
        """Relaxed reverse step of one width bucket as a padded lane cube."""
        sched = self.schedule
        s = self._fast_scratch(gi, int(gids.size), pad, n, prediction.dtype)
        cube, mx, tot, dg, cnt = s["cube"], s["mx"], s["tot"], s["dg"], s["cnt"]
        dtype = cube.dtype
        for j in range(pad):
            np.take(prediction, lane_cols[j], axis=1, out=cube[j])
        # Padded lanes duplicate their block's first logit (never above
        # the block maximum, so the max is unaffected) and are zeroed
        # right after the exp.  Every reduction runs lane by lane over
        # contiguous (rows, blocks) planes — numpy processes those at
        # full bandwidth, while both a tiny trailing axis and axis-0
        # reductions/cumsums of this shape fall off a cliff (measured
        # ~5-40x slower).
        np.copyto(mx, cube[0])
        for j in range(1, pad):
            np.maximum(mx, cube[j], out=mx)
        if t != 0:
            # Unnormalised posterior, everything scaled by the softmax
            # total S = Σexp and by beta = (1-alpha)/K:
            # p_j ∝ (abar·beta)·e_j + ((1-abar)/K·abar)·Σ(abar·beta·e).
            # The (abar·beta) factor folds into the exp as a log shift
            # (one plane op instead of a whole-cube multiply), and the
            # chosen lane's extra (alpha+beta)/beta posterior factor is a
            # scatter multiply over (rows, blocks), not a cube pass.
            alpha_t = float(sched.alphas[t])
            alpha_bar_prev = float(sched.alphas_bar_prev[t])
            beta = ((1.0 - alpha_t) / gwidths).astype(dtype)
            log_ab_beta = np.log(alpha_bar_prev * beta).astype(dtype)
            np.subtract(mx, log_ab_beta[None, :], out=mx)
            for j in range(pad):
                np.subtract(cube[j], mx, out=cube[j])
            np.exp(cube, out=cube)
            for j in range(2, pad):
                if pad_blocks[j].size:
                    cube[j][:, pad_blocks[j]] = 0.0
            np.copyto(tot, cube[0])
            for j in range(1, pad):
                np.add(tot, cube[j], out=tot)
            ct_coef = ((1.0 - alpha_bar_prev) / (gwidths * alpha_bar_prev)).astype(dtype)
            np.multiply(tot, ct_coef[None, :], out=tot)
            np.add(cube, tot[None, :, :], out=cube)
            ratio = ((alpha_t + beta) / beta).astype(dtype)
            idx = np.multiply(prev_chosen[:, gids], n * gids.size, out=s["idx"])
            idx += s["idx_base"]
            flat_cube = cube.reshape(-1)
            flat_cube[idx] = flat_cube[idx] * ratio[None, :]
            for j in range(2, pad):
                if pad_blocks[j].size:
                    cube[j][:, pad_blocks[j]] = 0.0
        else:
            for j in range(pad):
                np.subtract(cube[j], mx, out=cube[j])
            np.exp(cube, out=cube)
            for j in range(2, pad):
                if pad_blocks[j].size:
                    cube[j][:, pad_blocks[j]] = 0.0
        # In-lane CDF; the draw is scaled by the total mass instead of
        # normalising every lane (same distribution).
        for j in range(1, pad):
            np.add(cube[j], cube[j - 1], out=cube[j])
        draws_group = draws if gids.size == self.n_blocks else draws[gids]
        np.multiply(draws_group.T, cube[pad - 1], out=dg)
        np.less_equal(cube[0], dg, out=cnt, casting="unsafe")
        for j in range(1, pad):
            np.less_equal(cube[j], dg, out=s["cmp"])
            np.add(cnt, s["cmp"], out=cnt, casting="unsafe")
        # Padded/terminal lanes tie with the total only when the scaled
        # draw rounds up to it; the clip keeps the index in-block.
        np.minimum(cnt, gwidths[None, :] - 1, out=cnt)
        chosen[:, gids] = cnt

    def _p_sample_chunk(
        self,
        out: np.ndarray,
        prediction: np.ndarray,
        t: int,
        draws: np.ndarray,
        prev_chosen: Optional[np.ndarray],
        chosen: np.ndarray,
        onehot_prev: bool = False,
    ) -> None:
        n = out.shape[0]
        sched = self.schedule
        rows = np.arange(n)[:, None]

        for w, gidx, _gcols, lane_cols in self._width_groups:
            m = gidx.size
            s = self._group_scratch(w, m, n, prediction.dtype)
            g, mx, tot, dg, cnt = s["g"], s["mx"], s["tot"], s["dg"], s["cnt"]
            for j in range(w):
                np.take(prediction, lane_cols[j], axis=1, out=g[j])
            # Blockwise softmax of the x0 logits (lane planes are contiguous;
            # plane-sequential sums match the per-block ``sum(axis=1)`` of
            # fewer than 8 elements bit for bit, maxima in any order).
            np.copyto(mx, g[0])
            for j in range(1, w):
                np.maximum(mx, g[j], out=mx)
            for j in range(w):
                np.subtract(g[j], mx, out=g[j])
            np.exp(g, out=g)
            np.copyto(tot, g[0])
            for j in range(1, w):
                np.add(tot, g[j], out=tot)
            np.maximum(tot, 1e-12, out=tot)
            for j in range(w):
                np.divide(g[j], tot, out=g[j])
            if t == 0:
                np.copyto(tot, g[0])
                for j in range(1, w):
                    np.add(tot, g[j], out=tot)
                np.maximum(tot, 1e-12, out=tot)
                for j in range(w):
                    np.divide(g[j], tot, out=g[j])
            else:
                alpha_t = float(sched.alphas[t])
                alpha_bar_prev = float(sched.alphas_bar_prev[t])
                beta = (1.0 - alpha_t) / w
                factor_xt = s["fx"]
                factor_xt.fill(beta)
                flat = prev_chosen[:, gidx] * (n * m) + s["flat"]
                factor_xt.ravel()[flat.ravel()] = alpha_t * 1.0 + beta
                np.multiply(g, alpha_bar_prev, out=g)
                np.add(g, (1.0 - alpha_bar_prev) / w, out=g)
                np.multiply(g, factor_xt, out=g)
                np.copyto(tot, g[0])
                for j in range(1, w):
                    np.add(tot, g[j], out=tot)
                np.maximum(tot, 1e-12, out=tot)
                for j in range(w):
                    np.divide(g[j], tot, out=g[j])
            # Categorical draw: in-lane cumulative sums, normalise by the last
            # lane, then count CDF entries <= draw (== first-True argmax; the
            # all-False degenerate case falls back to index 0 like argmax, and
            # only exists when a lane's probability mass underflows 1e-12).
            for j in range(1, w):
                np.add(g[j], g[j - 1], out=g[j])
            degenerate = not (g[w - 1] >= 1e-12).all()
            np.maximum(g[w - 1], 1e-12, out=mx)
            for j in range(w):
                np.divide(g[j], mx, out=g[j])
            np.copyto(dg, draws[gidx].T)
            np.less_equal(g[0], dg, out=cnt, casting="unsafe")
            for j in range(1, w - 1):
                np.add(cnt, g[j] <= dg, out=cnt, casting="unsafe")
            if degenerate:
                # Rows whose normalised CDF tops out below the draw: argmax of
                # an all-False comparison is 0.
                chosen[:, gidx] = np.where(g[w - 1] <= dg, 0, cnt)
            else:
                chosen[:, gidx] = cnt

        self._p_sample_wide_blocks(out, prediction, t, draws, chosen)

        if onehot_prev:
            out[rows, self.starts[None, :] + prev_chosen] = 0.0
        else:
            self._zero_blocks(out)
        out[rows, self.starts[None, :] + chosen] = 1.0

    def _p_sample_wide_blocks(
        self,
        out: np.ndarray,
        prediction: np.ndarray,
        t: int,
        draws: np.ndarray,
        chosen: np.ndarray,
        blocks: Optional[Sequence[int]] = None,
    ) -> None:
        """Verbatim per-block reverse step for the wide (8+-category) blocks.

        The exact chunk kernel runs it for every 8+-wide block (whose bits it
        defines); the relaxed serving kernel passes ``blocks`` explicitly —
        only the blocks too wide for its padded lane cubes."""
        sched = self.schedule
        for b in self._wide_blocks if blocks is None else blocks:
            start, stop = self.spans[b]
            n_categories = stop - start
            logits = prediction[:, start:stop]
            logits = logits - logits.max(axis=1, keepdims=True)
            x0_probs = np.exp(logits)
            x0_probs /= np.maximum(x0_probs.sum(axis=1, keepdims=True), 1e-12)
            if t == 0:
                probs = x0_probs / np.maximum(x0_probs.sum(axis=1, keepdims=True), 1e-12)
            else:
                alpha_t = float(sched.alphas[t])
                alpha_bar_prev = float(sched.alphas_bar_prev[t])
                factor_xt = alpha_t * out[:, start:stop] + (1.0 - alpha_t) / n_categories
                factor_x0 = alpha_bar_prev * x0_probs + (1.0 - alpha_bar_prev) / n_categories
                probs = factor_xt * factor_x0
                probs = probs / np.maximum(probs.sum(axis=1, keepdims=True), 1e-12)
            cumulative = np.cumsum(probs, axis=1)
            cumulative /= np.maximum(cumulative[:, -1:], 1e-12)
            chosen[:, b] = (draws[b][:, None] < cumulative).argmax(axis=1)
