"""Multinomial diffusion for one-hot categorical features.

Hoogeboom et al. (2021) define a categorical forward process with uniform
transition kernels: at step ``t`` a category keeps its value with probability
``1 - beta_t`` and is resampled uniformly otherwise.  The closed-form
marginal and posterior are both simple mixtures of the one-hot vector and the
uniform distribution, which keeps every operation a dense numpy expression.

TabDDPM trains the denoiser to predict the distribution of ``x_0`` from
``x_t`` (via a cross-entropy loss, handled by the caller) and samples the
reverse chain through the posterior evaluated at the predicted ``x_0``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.models.tabddpm.schedule import DiffusionSchedule


class MultinomialDiffusion:
    """Uniform-kernel categorical diffusion over ``n_categories`` classes."""

    def __init__(self, n_categories: int, schedule: DiffusionSchedule):
        if n_categories < 2:
            raise ValueError("n_categories must be at least 2")
        self.n_categories = int(n_categories)
        self.schedule = schedule

    @property
    def n_steps(self) -> int:
        return self.schedule.n_steps

    # -- forward process -------------------------------------------------------------
    def q_probs(self, x0_onehot: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Marginal ``q(x_t | x_0)`` as a probability matrix, shape ``(n, K)``."""
        x0 = np.asarray(x0_onehot, dtype=np.float64)
        t = np.asarray(t, dtype=np.int64)
        keep = self.schedule.alphas_bar[t][:, None]
        return keep * x0 + (1.0 - keep) / self.n_categories

    def q_sample(self, x0_onehot: np.ndarray, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one-hot ``x_t`` from the forward marginal."""
        probs = self.q_probs(x0_onehot, t)
        return self._sample_onehot(probs, rng)

    # -- reverse process --------------------------------------------------------------
    def posterior_probs(
        self, x_t_onehot: np.ndarray, x0_probs: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """``q(x_{t-1} | x_t, x_0)`` with ``x_0`` given as a probability vector.

        Both factors of the (unnormalised) posterior are mixtures of a one-hot
        vector and the uniform distribution:
        ``q(x_{t-1}|x_t) ∝ alpha_t x_t + (1-alpha_t)/K`` and
        ``q(x_{t-1}|x_0) ∝ alpha_bar_{t-1} x_0 + (1-alpha_bar_{t-1})/K``.
        """
        x_t = np.asarray(x_t_onehot, dtype=np.float64)
        x0 = np.asarray(x0_probs, dtype=np.float64)
        t = np.asarray(t, dtype=np.int64)
        sched = self.schedule
        alpha_t = sched.alphas[t][:, None]
        alpha_bar_prev = sched.alphas_bar_prev[t][:, None]
        factor_xt = alpha_t * x_t + (1.0 - alpha_t) / self.n_categories
        factor_x0 = alpha_bar_prev * x0 + (1.0 - alpha_bar_prev) / self.n_categories
        unnormalised = factor_xt * factor_x0
        return unnormalised / np.maximum(unnormalised.sum(axis=1, keepdims=True), 1e-12)

    def p_sample_step(
        self,
        x_t_onehot: np.ndarray,
        t: int,
        x0_probs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One reverse step: sample ``x_{t-1}`` from the posterior at predicted x0."""
        n = x_t_onehot.shape[0]
        t_vector = np.full(n, t, dtype=np.int64)
        if t == 0:
            probs = np.asarray(x0_probs, dtype=np.float64)
            probs = probs / np.maximum(probs.sum(axis=1, keepdims=True), 1e-12)
        else:
            probs = self.posterior_probs(x_t_onehot, x0_probs, t_vector)
        return self._sample_onehot(probs, rng)

    def sample(
        self,
        n: int,
        x0_model: Callable[[np.ndarray, np.ndarray], np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Full reverse chain from the uniform distribution.

        ``x0_model(x_t_onehot, t_vector)`` must return x0 probability vectors.
        """
        uniform = np.full((n, self.n_categories), 1.0 / self.n_categories)
        x = self._sample_onehot(uniform, rng)
        for t in reversed(range(self.n_steps)):
            t_vector = np.full(n, t, dtype=np.int64)
            x0_probs = x0_model(x, t_vector)
            x = self.p_sample_step(x, t, x0_probs, rng)
        return x

    # -- helpers -------------------------------------------------------------------------
    @staticmethod
    def _sample_onehot(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorised categorical sampling returning one-hot rows."""
        cumulative = np.cumsum(probs, axis=1)
        cumulative /= np.maximum(cumulative[:, -1:], 1e-12)
        draws = rng.random((probs.shape[0], 1))
        chosen = (draws < cumulative).argmax(axis=1)
        onehot = np.zeros_like(probs)
        onehot[np.arange(probs.shape[0]), chosen] = 1.0
        return onehot


class MultinomialBlockDiffusion:
    """All categorical blocks of an encoded table, diffused in one shot.

    The per-block :class:`MultinomialDiffusion` draws the forward sample of
    each one-hot block with its own numpy calls, which makes a TabDDPM
    training step loop over categorical features in Python.  This class packs
    every block into a zero-padded ``(rows, blocks, max_categories)`` cube so
    one ``cumsum`` + one comparison samples all blocks at once.

    Bit-for-bit equivalence with the sequential per-block path is preserved:

    * the padded tail of each lane is exactly zero, so the in-lane cumulative
      sums (and the normalising last column) are unchanged;
    * the uniform draws are taken as one ``rng.random((blocks, rows))``
      matrix, which consumes the generator stream in the same order as the
      sequential per-block ``rng.random((rows, 1))`` calls.
    """

    def __init__(self, spans: Sequence[Tuple[int, int]], schedule: DiffusionSchedule):
        """``spans`` are the ``(start, stop)`` column ranges of the one-hot
        blocks inside the encoded matrix, in encoding order."""
        self.schedule = schedule
        self.spans = [(int(a), int(b)) for a, b in spans]
        widths = np.array([b - a for a, b in self.spans], dtype=np.intp)
        if widths.size and widths.min() < 2:
            raise ValueError("every categorical block needs at least 2 categories")
        self.n_blocks = len(self.spans)
        self.max_width = int(widths.max()) if widths.size else 0
        self.starts = np.array([a for a, _ in self.spans], dtype=np.intp)
        self.widths = widths
        # Gather index + validity mask for the padded cube; invalid positions
        # point at the block start and are zeroed through the mask.
        lane = np.arange(self.max_width, dtype=np.intp)[None, :]
        self.valid = (lane < widths[:, None]).astype(np.float64)
        self.gather = self.starts[:, None] + np.where(lane < widths[:, None], lane, 0)
        self._gather_flat = self.gather.ravel()
        self.columns = (
            np.concatenate([np.arange(a, b, dtype=np.intp) for a, b in self.spans])
            if self.spans else np.empty(0, dtype=np.intp)
        )

    def q_sample_into(
        self,
        out: np.ndarray,
        x0: np.ndarray,
        t: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Write forward samples of every block into ``out`` (same layout as ``x0``)."""
        if not self.n_blocks:
            return
        n = x0.shape[0]
        t = np.asarray(t, dtype=np.int64)
        keep = self.schedule.alphas_bar[t][:, None, None]
        x0_cube = x0[:, self._gather_flat].reshape(n, self.n_blocks, self.max_width)
        probs = keep * x0_cube + (1.0 - keep) / self.widths[None, :, None]
        # Padded lanes are zeroed here, so the cumulative sums below match the
        # unpadded per-block ones exactly; x0 needs no separate masking.
        probs *= self.valid
        cumulative = np.cumsum(probs, axis=2)
        cumulative /= np.maximum(cumulative[:, :, -1:], 1e-12)
        draws = rng.random((self.n_blocks, n)).T[:, :, None]
        chosen = (draws < cumulative).argmax(axis=2)
        out[:, self.columns] = 0.0
        out[np.arange(n)[:, None], self.starts[None, :] + chosen] = 1.0
