"""Gaussian (continuous) diffusion process for numerical features.

Standard DDPM machinery specialised to flat feature vectors: the forward
process adds Gaussian noise according to the schedule, the model predicts the
added noise (epsilon parameterisation) and ancestral sampling walks the
reverse chain.  Everything outside the denoiser call is plain numpy — only
the loss needs gradients, and that is handled by the caller.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.models.tabddpm.schedule import DiffusionSchedule


def _serving_dtype(*arrays: np.ndarray) -> np.dtype:
    """float32 only when every operand is float32, else the float64 default.

    The exact sampling/training chains pass float64 arrays, for which every
    cast below is a no-op view — their bits are untouched.  The relaxed
    serving chain passes float32 states, and rounding the (per-step constant)
    schedule coefficients once keeps the whole step in float32 instead of
    silently up-casting each product back to float64.
    """
    if all(a.dtype == np.float32 for a in arrays):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


class GaussianDiffusion:
    """Epsilon-prediction Gaussian diffusion over ``n_features`` dimensions."""

    def __init__(self, schedule: DiffusionSchedule):
        self.schedule = schedule

    @property
    def n_steps(self) -> int:
        return self.schedule.n_steps

    # -- forward process -----------------------------------------------------------
    def q_sample(
        self, x0: np.ndarray, t: np.ndarray, noise: np.ndarray
    ) -> np.ndarray:
        """Sample ``x_t ~ q(x_t | x_0)`` given per-row timesteps ``t``."""
        x0 = np.asarray(x0)
        noise = np.asarray(noise)
        dtype = _serving_dtype(x0, noise)
        x0 = x0.astype(dtype, copy=False)
        noise = noise.astype(dtype, copy=False)
        t = np.asarray(t, dtype=np.int64)
        coeff_x0 = self.schedule.sqrt_alphas_bar[t][:, None].astype(dtype, copy=False)
        coeff_noise = self.schedule.sqrt_one_minus_alphas_bar[t][:, None].astype(dtype, copy=False)
        return coeff_x0 * x0 + coeff_noise * noise

    # -- reverse process -----------------------------------------------------------
    def predict_x0_from_eps(self, x_t: np.ndarray, t: np.ndarray, eps: np.ndarray) -> np.ndarray:
        """Recover the x0 estimate implied by a noise prediction."""
        x_t = np.asarray(x_t)
        eps = np.asarray(eps)
        dtype = _serving_dtype(x_t, eps)
        t = np.asarray(t, dtype=np.int64)
        sqrt_ab = self.schedule.sqrt_alphas_bar[t][:, None].astype(dtype, copy=False)
        sqrt_1m = self.schedule.sqrt_one_minus_alphas_bar[t][:, None].astype(dtype, copy=False)
        return (x_t.astype(dtype, copy=False) - sqrt_1m * eps.astype(dtype, copy=False)) / np.maximum(
            sqrt_ab, 1e-12
        )

    def posterior_mean(self, x0: np.ndarray, x_t: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Mean of ``q(x_{t-1} | x_t, x_0)`` (coefficients pre-computed per step)."""
        x0 = np.asarray(x0)
        x_t = np.asarray(x_t)
        dtype = _serving_dtype(x0, x_t)
        t = np.asarray(t, dtype=np.int64)
        sched = self.schedule
        coef_x0 = sched.posterior_mean_coef_x0[t][:, None].astype(dtype, copy=False)
        coef_xt = sched.posterior_mean_coef_xt[t][:, None].astype(dtype, copy=False)
        return coef_x0 * x0.astype(dtype, copy=False) + coef_xt * x_t.astype(dtype, copy=False)

    def p_sample_step(
        self,
        x_t: np.ndarray,
        t: int,
        eps_prediction: np.ndarray,
        rng: np.random.Generator,
        *,
        clip_x0: Optional[float] = 8.0,
    ) -> np.ndarray:
        """One ancestral sampling step from ``x_t`` to ``x_{t-1}``."""
        n = x_t.shape[0]
        t_vector = np.full(n, t, dtype=np.int64)
        x0_hat = self.predict_x0_from_eps(x_t, t_vector, eps_prediction)
        if clip_x0 is not None:
            # Quantile-transformed features live in a few standard deviations;
            # clipping the implied x0 keeps early (high-noise) steps stable.
            x0_hat = np.clip(x0_hat, -clip_x0, clip_x0)
        mean = self.posterior_mean(x0_hat, x_t, t_vector)
        if t == 0:
            return mean
        variance = self.schedule.posterior_variance[t]
        noise_term = np.sqrt(variance) * rng.standard_normal(x_t.shape)
        # float64 chains add the term unchanged (bit-identical); float32
        # serving states round it once so the step result stays float32.
        return mean + noise_term.astype(mean.dtype, copy=False)

    def sample(
        self,
        n: int,
        n_features: int,
        eps_model: Callable[[np.ndarray, np.ndarray], np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Full reverse chain: start from pure noise and denoise step by step.

        ``eps_model(x_t, t_vector)`` must return the predicted noise for a
        batch at integer timesteps ``t_vector``.
        """
        x = rng.standard_normal((n, n_features))
        for t in reversed(range(self.n_steps)):
            t_vector = np.full(n, t, dtype=np.int64)
            eps = eps_model(x, t_vector)
            x = self.p_sample_step(x, t, eps, rng)
        return x
