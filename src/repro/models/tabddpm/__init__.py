"""TabDDPM: denoising diffusion probabilistic model for tabular data.

Kotelnikov et al. (2023) combine two diffusion processes — Gaussian diffusion
for (quantile-transformed) numerical features and multinomial diffusion for
one-hot categorical features — driven by a single MLP denoiser conditioned on
the timestep.  The sub-modules map one-to-one onto those pieces:

* :mod:`~repro.models.tabddpm.schedule` — beta schedules and derived
  quantities shared by both processes,
* :mod:`~repro.models.tabddpm.gaussian` — the continuous (epsilon-prediction)
  diffusion,
* :mod:`~repro.models.tabddpm.multinomial` — the categorical diffusion with
  uniform transition kernels and its posterior,
* :mod:`~repro.models.tabddpm.denoiser` — the timestep-conditioned MLP,
* :mod:`~repro.models.tabddpm.model` — the :class:`TabDDPMSurrogate` facade
  implementing the common :class:`~repro.models.base.Surrogate` API.
"""

from repro.models.tabddpm.schedule import DiffusionSchedule, cosine_beta_schedule, linear_beta_schedule
from repro.models.tabddpm.gaussian import GaussianDiffusion
from repro.models.tabddpm.multinomial import MultinomialDiffusion
from repro.models.tabddpm.denoiser import MLPDenoiser, timestep_embedding
from repro.models.tabddpm.model import TabDDPMConfig, TabDDPMSurrogate

__all__ = [
    "DiffusionSchedule",
    "cosine_beta_schedule",
    "linear_beta_schedule",
    "GaussianDiffusion",
    "MultinomialDiffusion",
    "MLPDenoiser",
    "timestep_embedding",
    "TabDDPMConfig",
    "TabDDPMSurrogate",
]
