"""Timestep-conditioned MLP denoiser.

TabDDPM uses a plain MLP whose input is the concatenation of the noisy
feature vector and a sinusoidal embedding of the diffusion timestep.  The
output is split by the caller into the epsilon prediction for the numerical
block and the per-column x0 logits for the categorical blocks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn import MLP, Module, PackedForward, Tensor
from repro.nn.serving import apply_activation
from repro.nn.tensor import is_grad_enabled
from repro.utils.rng import SeedLike


def timestep_embedding(t: np.ndarray, dim: int, max_period: float = 10_000.0) -> np.ndarray:
    """Sinusoidal embedding of integer timesteps, shape ``(len(t), dim)``.

    The same construction as transformer positional encodings; gives the MLP
    a smooth, high-resolution representation of where it is along the chain.
    """
    if dim < 2:
        raise ValueError("embedding dimension must be at least 2")
    t = np.asarray(t, dtype=np.float64)
    half = dim // 2
    freqs = np.exp(-np.log(max_period) * np.arange(half) / max(half - 1, 1))
    args = t[:, None] * freqs[None, :]
    embedding = np.concatenate([np.sin(args), np.cos(args)], axis=1)
    if embedding.shape[1] < dim:
        embedding = np.concatenate([embedding, np.zeros((t.shape[0], dim - embedding.shape[1]))], axis=1)
    return embedding


class MLPDenoiser(Module):
    """MLP denoiser taking ``[x_t, timestep_embedding]`` and emitting one output
    value per encoded feature (epsilon for numerical dims, logits for one-hot
    categorical dims)."""

    def __init__(
        self,
        n_features: int,
        hidden_dims: Sequence[int] = (256, 256),
        time_embedding_dim: int = 64,
        *,
        fused: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if n_features < 1:
            raise ValueError("n_features must be at least 1")
        self.n_features = int(n_features)
        self.time_embedding_dim = int(time_embedding_dim)
        self.net = MLP(
            n_features + time_embedding_dim,
            list(hidden_dims),
            n_features,
            activation="relu",
            fused=fused,
            seed=seed,
        )

    def _ensure_inference_buffer(self, n: int) -> np.ndarray:
        buffer = getattr(self, "_inference_buffer", None)
        if buffer is None or buffer.shape[0] != n:
            buffer = np.empty((n, self.n_features + self.time_embedding_dim))
            self._inference_buffer = buffer
        return buffer

    def serving_state(self, n: int) -> np.ndarray:
        """A zeroed ``(n, n_features)`` state view inside the inference buffer.

        Samplers that write the evolving state directly into this view save
        one full copy per denoiser call: :meth:`forward` detects the aliasing
        and skips the staging copy (the input values are identical either
        way).
        """
        view = self._ensure_inference_buffer(n)[:, : self.n_features]
        view[:] = 0.0
        return view

    def __getstate__(self):
        # The inference buffer is sample-request-sized scratch; it is
        # re-created on the next forward (the getattr guard above).
        state = dict(self.__dict__)
        state.pop("_inference_buffer", None)
        return state

    def packed(self, dtype=np.float32) -> "PackedDenoiser":
        """A fresh reduced-precision serving forward of this denoiser.

        Snapshot semantics: the returned cache packs the *current* weights
        once and does not follow later training steps — owners rebuild it
        after ``fit`` (see :class:`PackedDenoiser`).
        """
        return PackedDenoiser(self, dtype=dtype)

    def forward(self, x_t: Tensor, t: np.ndarray) -> Tensor:
        t_arr = np.asarray(t)
        if (
            not is_grad_enabled()
            and t_arr.ndim == 1
            and t_arr.size > 1
            and (t_arr == t_arr[0]).all()
        ):
            # Ancestral sampling calls the denoiser with one shared timestep:
            # the sinusoidal embedding is the same row for every sample, so it
            # is computed once and broadcast into a reused input buffer (the
            # embedding is a pure per-row function — values are identical to
            # the full per-row computation and concatenation).
            n = x_t.data.shape[0]
            buffer = self._ensure_inference_buffer(n)
            if x_t.data.base is not buffer:
                buffer[:, : self.n_features] = x_t.data
            buffer[:, self.n_features :] = timestep_embedding(t_arr[:1], self.time_embedding_dim)
            return self.net(Tensor(buffer))
        emb = timestep_embedding(t, self.time_embedding_dim)
        inputs = Tensor.concat([x_t, Tensor(emb)], axis=1)
        return self.net(inputs)


class PackedDenoiser:
    """Reduced-precision serving forward of an :class:`MLPDenoiser`.

    The denoiser's matmuls dominate TabDDPM sampling at serving batch sizes,
    so the relaxed ``sampling_mode="fast"`` chain runs them through a
    :class:`~repro.nn.serving.PackedForward` weight cache (float32 by
    default) instead of the float64 autograd graph.

    Ancestral sampling shares one timestep per step, so the sinusoidal
    embedding is the *same row* for every sample — its contribution to the
    first affine layer (``emb_row @ W_emb + bias``) is a constant vector per
    ``t``, cached here.  Each call therefore multiplies only the state block
    of the first layer's weights (skipping the embedding block's matmul
    entirely) and adds the cached row.  The sampler state lives in a
    contiguous buffer handed out by :meth:`serving_state`; :meth:`__call__`
    returns the packed forward's reused output buffer — consume it before
    the next step.
    """

    def __init__(self, denoiser: MLPDenoiser, dtype=np.float32) -> None:
        self.dtype = np.dtype(dtype)
        self.n_features = denoiser.n_features
        self.time_embedding_dim = denoiser.time_embedding_dim
        self.net = PackedForward(denoiser.net, dtype=dtype)
        first_weight, first_bias, self._first_act, self._first_slope = self.net.layers[0]
        self._w_state = np.ascontiguousarray(first_weight[: self.n_features])
        self._w_emb = np.ascontiguousarray(first_weight[self.n_features :])
        self._first_bias = first_bias
        self._state_buffer: "np.ndarray | None" = None
        self._first_out: "np.ndarray | None" = None
        self._bias_rows: dict = {}

    def serving_state(self, n: int) -> np.ndarray:
        """A zeroed, contiguous ``(n, n_features)`` state buffer to sample in."""
        buffer = self._state_buffer
        if buffer is None or buffer.shape[0] != n:
            buffer = np.zeros((n, self.n_features), dtype=self.dtype)
            self._state_buffer = buffer
        else:
            buffer[:] = 0.0
        return buffer

    def _bias_row(self, t: int) -> np.ndarray:
        row = self._bias_rows.get(t)
        if row is None:
            if len(self._bias_rows) >= 4096:
                self._bias_rows.clear()
            emb = timestep_embedding(np.asarray([t]), self.time_embedding_dim)
            row = emb.astype(self.dtype) @ self._w_emb
            if self._first_bias is not None:
                row = row + self._first_bias
            self._bias_rows[t] = row
        return row

    def warm(self, n: int) -> None:
        """Pre-allocate the serving-state and forward buffers for ``n`` rows.

        The layer-0 buffer stays unallocated: :meth:`__call__` computes the
        first layer itself (into ``_first_out``) and enters the packed net at
        layer 1.
        """
        if n < 1:
            return
        if self._state_buffer is None or self._state_buffer.shape[0] != n:
            self._state_buffer = np.zeros((n, self.n_features), dtype=self.dtype)
        if self._first_out is None or self._first_out.shape[0] != n:
            self._first_out = np.empty((n, self._w_state.shape[1]), dtype=self.dtype)
        self.net.warm(n, start=1)

    def __call__(self, state: np.ndarray, t: int) -> np.ndarray:
        """Denoise ``state`` at shared timestep ``t``; returns a reused buffer."""
        x = np.ascontiguousarray(state, dtype=self.dtype)
        out = self._first_out
        if out is None or out.shape[0] != x.shape[0]:
            out = self._first_out = np.empty(
                (x.shape[0], self._w_state.shape[1]), dtype=self.dtype
            )
        np.matmul(x, self._w_state, out=out)
        out += self._bias_row(t)
        apply_activation(out, self._first_act, self._first_slope)
        if len(self.net.layers) == 1:
            return out
        return self.net.forward_from(out, 1)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_state_buffer"] = None
        state["_first_out"] = None
        state["_bias_rows"] = {}
        return state
