"""The common surrogate-model interface.

Every generative model in :mod:`repro.models` derives from
:class:`Surrogate`: ``fit`` consumes a mixed-type
:class:`~repro.tabular.table.Table`, ``sample`` returns a synthetic table with
the same schema.  Persistence goes through :meth:`save`/:meth:`load` (pickle
of the fitted object), which is sufficient for experiment pipelines that
retrain from a seed anyway.

Serving modes
-------------
``sample`` accepts ``sampling_mode="exact"`` (the default) or ``"fast"``:

* **exact** — the historical generation path, bit-identical for a fixed seed
  across releases (``tests/test_sampling_equivalence.py`` pins it against the
  verbatim seed implementations).  Use it whenever reproducibility of the
  byte stream matters: experiments, paper artefacts, regression baselines.
* **fast** — the relaxed serving mode: the same fitted model and the same
  output *distribution*, but a different RNG stream and reduced-precision
  (float32) network forwards where that buys throughput.  Models without a
  dedicated relaxed path fall back to the exact one, so ``"fast"`` is always
  safe to request.  Fast-mode outputs are validated distributionally
  (KS / chi-squared against exact-mode samples in
  ``tests/test_serving_modes.py``), never bit-wise.

:meth:`sample_batches` is the streaming companion for serving-scale requests:
it yields the ``n`` requested rows as tables of at most ``chunk_size`` rows,
so a million-row request generates in cache-sized pieces with bounded peak
memory.  Each chunk draws from its own :class:`numpy.random.SeedSequence`
child stream, so the result is deterministic given ``(seed, n, chunk_size)``
but is not the concatenation of a single ``sample(n)`` stream.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Iterator, Optional, Tuple, Type, TypeVar, Union

from repro.tabular.schema import TableSchema
from repro.tabular.table import Table
from repro.utils.rng import SeedLike, spawn_rngs

PathLike = Union[str, Path]
S = TypeVar("S", bound="Surrogate")

#: The serving modes understood by :meth:`Surrogate.sample`.
SAMPLING_MODES: Tuple[str, ...] = ("exact", "fast")


class Surrogate:
    """Abstract base class of all tabular generative surrogates."""

    #: Human-readable model name (matches the paper's Table I labels).
    name: str = "surrogate"

    #: Attribute names of lazily-rebuilt serving caches (packed float32
    #: weight snapshots, derived block samplers).  They are dropped from
    #: pickles — every consumer rebuilds them with a ``getattr`` guard — so
    #: saved models carry one copy of each network's weights, not two.
    _TRANSIENT_ATTRS: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.schema_: Optional[TableSchema] = None
        self.n_training_rows_: Optional[int] = None

    # -- API -------------------------------------------------------------------
    def fit(self, table: Table) -> "Surrogate":
        """Fit the surrogate on a training table."""
        raise NotImplementedError

    def sample(
        self, n: int, *, seed: SeedLike = None, sampling_mode: str = "exact"
    ) -> Table:
        """Draw ``n`` synthetic records with the training schema.

        ``sampling_mode="exact"`` (default) keeps the bit-reproducible
        generation path; ``"fast"`` selects the relaxed serving path where the
        model provides one (same distribution, different stream — see the
        module docstring for the contract).
        """
        self._check_sample_request(n, sampling_mode)
        if sampling_mode == "fast":
            return self._sample_fast(n, seed=seed)
        return self._sample_exact(n, seed=seed)

    def sample_batches(
        self,
        n: int,
        chunk_size: int,
        *,
        seed: SeedLike = None,
        sampling_mode: str = "exact",
    ) -> Iterator[Table]:
        """Stream ``n`` synthetic rows as tables of at most ``chunk_size`` rows.

        Bounded-memory serving API: each chunk is generated (and can be
        consumed, written out or shipped) before the next one exists, so peak
        memory scales with ``chunk_size`` rather than ``n``.  Chunk ``i``
        samples from the ``i``-th :class:`numpy.random.SeedSequence` child of
        ``seed`` — deterministic for a fixed ``(seed, n, chunk_size)``, but a
        different stream from one monolithic ``sample(n)`` call.
        """
        self._check_sample_request(n, sampling_mode)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        self._require_fitted()
        n_chunks = -(-n // chunk_size) if n else 0
        rngs = spawn_rngs(seed, n_chunks)

        def _generate() -> Iterator[Table]:
            remaining = n
            for rng in rngs:
                size = min(chunk_size, remaining)
                yield self.sample(size, seed=rng, sampling_mode=sampling_mode)
                remaining -= size

        return _generate()

    # -- mode implementations ----------------------------------------------------
    def _sample_exact(self, n: int, *, seed: SeedLike = None) -> Table:
        """The bit-reproducible sampling path (every surrogate provides it)."""
        raise NotImplementedError

    def _sample_fast(self, n: int, *, seed: SeedLike = None) -> Table:
        """The relaxed serving path; defaults to the exact one.

        Single-pass statistical samplers (SMOTE, the Gaussian copula) are
        already one vectorised shot per request, so their fast mode *is* the
        exact mode; the deep surrogates override this with fused/float32
        serving chains.
        """
        return self._sample_exact(n, seed=seed)

    @property
    def supports_fast_sampling(self) -> bool:
        """Whether this surrogate has a dedicated relaxed serving path."""
        return type(self)._sample_fast is not Surrogate._sample_fast

    # -- serving hooks -----------------------------------------------------------
    #: Default chunk size serving layers shard requests into (rows).  Large
    #: enough that per-chunk overhead (RNG spawn, dispatch, table assembly)
    #: amortises, small enough that a chunk's activations stay cache-friendly
    #: and a pool of workers load-balances a request.
    DEFAULT_SERVING_CHUNK = 16_384

    def warm_serving_caches(self, chunk_rows: int = DEFAULT_SERVING_CHUNK) -> int:
        """Build the relaxed serving mode's lazy caches eagerly.

        The fast-path caches (packed float32 weight snapshots, derived block
        samplers — the :attr:`_TRANSIENT_ATTRS`) are built lazily on first
        use and dropped from pickles, so a freshly loaded model pays cache
        construction plus buffer allocation on its first request.  Serving
        layers (the model registry at registration, sharded-sampler workers
        at startup) call this instead, so first-request latency is flat: a
        tiny throwaway draw builds every lazy cache, then each cache that
        exposes a ``warm`` hook pre-sizes its buffers for ``chunk_rows``-row
        requests.  Returns the number of caches pre-sized.
        """
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be at least 1, got {chunk_rows}")
        self._require_fitted()
        self.sample(2, seed=0, sampling_mode="fast")
        warmed = 0
        for attr in self._TRANSIENT_ATTRS:
            warm = getattr(getattr(self, attr, None), "warm", None)
            if callable(warm):
                warm(int(chunk_rows))
                warmed += 1
        return warmed

    def serving_snapshot(self) -> bytes:
        """The fitted surrogate as bytes, for shipping to serving workers.

        Exactly the :meth:`save` payload (transient serving caches dropped —
        each worker rebuilds and warms its own via
        :meth:`warm_serving_caches`), without touching the filesystem.
        """
        self._require_fitted()
        return pickle.dumps(self)

    @classmethod
    def from_snapshot(cls: Type[S], payload: bytes) -> S:
        """Rehydrate a surrogate from :meth:`serving_snapshot` bytes."""
        obj = pickle.loads(payload)
        if not isinstance(obj, cls):
            raise TypeError(
                f"snapshot does not contain a {cls.__name__}, got {type(obj).__name__}"
            )
        return obj

    # -- shared helpers ----------------------------------------------------------
    def _check_sample_request(self, n: int, sampling_mode: str) -> None:
        if sampling_mode not in SAMPLING_MODES:
            raise ValueError(
                f"unknown sampling mode {sampling_mode!r}; use one of {SAMPLING_MODES}"
            )
        if n < 0:
            raise ValueError(f"cannot sample a negative number of rows ({n})")

    def _mark_fitted(self, table: Table) -> None:
        if len(table) == 0:
            raise ValueError(f"{type(self).__name__} cannot be fitted on an empty table")
        self.schema_ = table.schema
        self.n_training_rows_ = len(table)

    def _require_fitted(self) -> None:
        if self.schema_ is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() before sample()"
            )

    @property
    def is_fitted(self) -> bool:
        return self.schema_ is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}({state})"

    # -- persistence --------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        for attr in self._TRANSIENT_ATTRS:
            state.pop(attr, None)
        return state

    def save(self, path: PathLike) -> None:
        """Serialise the fitted surrogate to ``path`` (pickle)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as fh:
            pickle.dump(self, fh)

    @classmethod
    def load(cls: Type[S], path: PathLike) -> S:
        """Load a surrogate saved with :meth:`save`."""
        with Path(path).open("rb") as fh:
            obj = pickle.load(fh)
        if not isinstance(obj, cls):
            raise TypeError(f"{path} does not contain a {cls.__name__}")
        return obj
