"""The common surrogate-model interface.

Every generative model in :mod:`repro.models` derives from
:class:`Surrogate`: ``fit`` consumes a mixed-type
:class:`~repro.tabular.table.Table`, ``sample`` returns a synthetic table with
the same schema.  Persistence goes through :meth:`save`/:meth:`load` (pickle
of the fitted object), which is sufficient for experiment pipelines that
retrain from a seed anyway.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Optional, Type, TypeVar, Union

from repro.tabular.schema import TableSchema
from repro.tabular.table import Table
from repro.utils.rng import SeedLike

PathLike = Union[str, Path]
S = TypeVar("S", bound="Surrogate")


class Surrogate:
    """Abstract base class of all tabular generative surrogates."""

    #: Human-readable model name (matches the paper's Table I labels).
    name: str = "surrogate"

    def __init__(self) -> None:
        self.schema_: Optional[TableSchema] = None
        self.n_training_rows_: Optional[int] = None

    # -- API -------------------------------------------------------------------
    def fit(self, table: Table) -> "Surrogate":
        """Fit the surrogate on a training table."""
        raise NotImplementedError

    def sample(self, n: int, *, seed: SeedLike = None) -> Table:
        """Draw ``n`` synthetic records with the training schema."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------
    def _mark_fitted(self, table: Table) -> None:
        if len(table) == 0:
            raise ValueError(f"{type(self).__name__} cannot be fitted on an empty table")
        self.schema_ = table.schema
        self.n_training_rows_ = len(table)

    def _require_fitted(self) -> None:
        if self.schema_ is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() before sample()"
            )

    @property
    def is_fitted(self) -> bool:
        return self.schema_ is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}({state})"

    # -- persistence --------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Serialise the fitted surrogate to ``path`` (pickle)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as fh:
            pickle.dump(self, fh)

    @classmethod
    def load(cls: Type[S], path: PathLike) -> S:
        """Load a surrogate saved with :meth:`save`."""
        with Path(path).open("rb") as fh:
            obj = pickle.load(fh)
        if not isinstance(obj, cls):
            raise TypeError(f"{path} does not contain a {cls.__name__}")
        return obj
