"""SMOTE-style interpolation surrogate.

SMOTE (Chawla et al., 2002) was designed for minority-class oversampling; the
paper uses it as a strong non-learning baseline for full-table synthesis:
a synthetic record is created by picking a random training record, finding
its ``k`` nearest neighbours in a mixed-type metric space, choosing one of
them and interpolating numerical features at a random fraction of the way
between the two records.  Categorical features are copied from one of the two
endpoints at random (weighted by the interpolation fraction), which preserves
realistic category combinations.

Because every synthetic record lies on a segment between two real records,
SMOTE attains excellent per-feature and correlation fidelity but the worst
privacy (lowest DCR) — exactly the trade-off the paper reports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.models.base import Surrogate
from repro.tabular.mixed import MixedEncoder
from repro.tabular.table import Table
from repro.utils.rng import SeedLike, as_rng


class SMOTESurrogate(Surrogate):
    """Nearest-neighbour interpolation sampler over the full table.

    Parameters
    ----------
    k_neighbors:
        Number of nearest neighbours considered per seed record (the original
        SMOTE uses 5).
    categorical_weight:
        Relative weight of a categorical mismatch in the neighbour metric;
        1.0 makes one category flip comparable to a full-range numerical move.
    """

    name = "SMOTE"

    def __init__(self, k_neighbors: int = 5, categorical_weight: float = 1.0) -> None:
        super().__init__()
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be at least 1")
        self.k_neighbors = int(k_neighbors)
        self.categorical_weight = float(categorical_weight)
        self._encoder: Optional[MixedEncoder] = None
        self._numerical: Optional[np.ndarray] = None
        self._categorical_codes: Optional[np.ndarray] = None
        self._neighbors: Optional[np.ndarray] = None

    # -- fitting ------------------------------------------------------------------
    def fit(self, table: Table) -> "SMOTESurrogate":
        self._mark_fitted(table)
        self._encoder = MixedEncoder()
        self._encoder.fit(table)
        num, cat = self._encoder.transform_codes(table)
        self._numerical = num
        self._categorical_codes = cat

        # Nearest-neighbour search space: transformed numericals plus scaled
        # one-hot categoricals (so mixed-type distances are balanced).
        onehot = self._encoder.transform(table).values
        cat_cols = self._encoder.blocks_ if self._encoder.blocks_ else []
        search = [num]
        for block in cat_cols:
            if block.kind.value == "categorical":
                search.append(onehot[:, block.slice] * self.categorical_weight / np.sqrt(2.0))
        search_matrix = np.concatenate(search, axis=1)

        k = min(self.k_neighbors + 1, len(table))
        tree = cKDTree(search_matrix)
        _, neighbor_idx = tree.query(search_matrix, k=k)
        if neighbor_idx.ndim == 1:
            neighbor_idx = neighbor_idx[:, None]
        # Drop the self-match in the first column when present.
        self._neighbors = neighbor_idx[:, 1:] if neighbor_idx.shape[1] > 1 else neighbor_idx
        return self

    # -- sampling -----------------------------------------------------------------
    def _sample_exact(self, n: int, *, seed: SeedLike = None) -> Table:
        # Already a single vectorised pass per request, so the relaxed
        # serving mode falls back to this path (see Surrogate._sample_fast).
        self._require_fitted()
        rng = as_rng(seed)
        n_train = self._numerical.shape[0]

        seeds = rng.integers(0, n_train, size=n)
        neighbor_choice = rng.integers(0, self._neighbors.shape[1], size=n)
        partners = self._neighbors[seeds, neighbor_choice]
        gaps = rng.random((n, 1))

        base_num = self._numerical[seeds]
        partner_num = self._numerical[partners]
        synthetic_num = base_num + gaps * (partner_num - base_num)

        base_cat = self._categorical_codes[seeds]
        partner_cat = self._categorical_codes[partners]
        take_partner = rng.random(base_cat.shape) < gaps
        synthetic_cat = np.where(take_partner, partner_cat, base_cat)

        return self._encoder.inverse_transform_codes(synthetic_num, synthetic_cat)
