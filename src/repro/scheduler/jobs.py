"""Job representation for the grid simulator and conversion from tables.

A :class:`SimulatedJob` carries exactly the information the simulator needs:
arrival time, requested cores, HS23-weighted workload (which, divided by the
executing site's per-core HS23 score and the core count, gives the running
time) and the data-placement hints (project / datatype) used by the
data-locality broker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.tabular.table import Table


@dataclass
class SimulatedJob:
    """One job to be scheduled by the grid simulator."""

    job_id: int
    arrival_time: float
    cores: int
    workload: float
    project: str = ""
    datatype: str = ""
    input_bytes: float = 0.0

    def runtime_at(self, hs23_per_core: float) -> float:
        """Running time (hours) when executed at a site with the given HS23/core."""
        if hs23_per_core <= 0:
            raise ValueError("hs23_per_core must be positive")
        effective = max(self.workload, 1e-9)
        return effective / (self.cores * hs23_per_core)


def jobs_from_table(
    table: Table,
    *,
    time_column: str = "creationtime",
    workload_column: str = "workload",
    default_cores: int = 1,
    cores: Optional[np.ndarray] = None,
) -> List[SimulatedJob]:
    """Convert a (real or synthetic) job table into simulator jobs.

    The nine-column surrogate table does not carry the core count (it is folded
    into the workload), so a constant ``default_cores`` (or an explicit
    ``cores`` array) is used for the slot footprint.
    """
    times = np.asarray(table[time_column], dtype=np.float64)
    workloads = np.asarray(table[workload_column], dtype=np.float64)
    projects = table["project"] if "project" in table else np.full(len(table), "", dtype=object)
    datatypes = table["datatype"] if "datatype" in table else np.full(len(table), "", dtype=object)
    sizes = (
        np.asarray(table["inputfilebytes"], dtype=np.float64)
        if "inputfilebytes" in table
        else np.zeros(len(table))
    )
    core_counts = (
        np.asarray(cores, dtype=np.int64)
        if cores is not None
        else np.full(len(table), int(default_cores), dtype=np.int64)
    )
    order = np.argsort(times, kind="stable")
    jobs = [
        SimulatedJob(
            job_id=int(i),
            arrival_time=float(times[idx]),
            cores=int(max(1, core_counts[idx])),
            workload=float(max(workloads[idx], 0.0)),
            project=str(projects[idx]),
            datatype=str(datatypes[idx]),
            input_bytes=float(sizes[idx]),
        )
        for i, idx in enumerate(order)
    ]
    return jobs
