"""Event primitives for the discrete-event grid simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, List, Optional, Tuple


class EventType(str, Enum):
    """Kinds of events processed by the simulator."""

    JOB_ARRIVAL = "job_arrival"
    JOB_START = "job_start"
    JOB_FINISH = "job_finish"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(order=False)
class Event:
    """A timestamped simulator event.

    Ordering is by time, then by a monotonically increasing sequence number so
    simultaneous events are processed in insertion order (deterministic runs).
    """

    time: float
    kind: EventType
    payload: Any = None


class EventQueue:
    """A stable priority queue of events keyed by time."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
