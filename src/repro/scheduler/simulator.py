"""The discrete-event grid simulator.

Jobs arrive at their creation time, are brokered to a site with free slots
(or wait in a FIFO backlog), run for ``workload / (cores × HS23_per_core)``
hours and release their slots.  The simulation is deterministic given the job
list, the cluster and the broker, so real-vs-synthetic comparisons isolate
the effect of the workload itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.scheduler.broker import Broker, LeastLoadedBroker
from repro.scheduler.cluster import GridCluster
from repro.scheduler.events import Event, EventQueue, EventType
from repro.scheduler.jobs import SimulatedJob

#: creationtime is measured in days while runtimes are hours.
_HOURS_PER_DAY = 24.0


@dataclass
class SimulationResult:
    """Summary statistics of one simulation run."""

    broker: str
    n_jobs: int
    n_completed: int
    makespan_days: float
    mean_wait_hours: float
    p95_wait_hours: float
    mean_runtime_hours: float
    utilization_by_site: Dict[str, float]
    wait_times_hours: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))

    @property
    def mean_utilization(self) -> float:
        values = list(self.utilization_by_site.values())
        return float(np.mean(values)) if values else 0.0

    def as_row(self) -> Dict[str, float]:
        return {
            "broker": self.broker,
            "jobs": self.n_jobs,
            "completed": self.n_completed,
            "makespan_days": round(self.makespan_days, 3),
            "mean_wait_h": round(self.mean_wait_hours, 3),
            "p95_wait_h": round(self.p95_wait_hours, 3),
            "mean_runtime_h": round(self.mean_runtime_hours, 3),
            "mean_utilization": round(self.mean_utilization, 4),
        }


class GridSimulator:
    """Event-driven simulation of job execution on a multi-site grid."""

    def __init__(self, cluster: GridCluster, broker: Optional[Broker] = None) -> None:
        self.cluster = cluster
        self.broker = broker or LeastLoadedBroker()

    def run(self, jobs: Sequence[SimulatedJob], *, max_backlog: Optional[int] = None) -> SimulationResult:
        """Simulate the execution of ``jobs`` and return summary statistics.

        Dispatch keeps two pieces of free-slot accounting next to the event
        heap so a saturated backlog is *not* rescanned with broker calls on
        every event:

        * ``free_max`` — the largest per-site free-core count, read from the
          cluster's O(log sites) free-core index after each allocation and
          bumped in O(1) on release — lets infeasible jobs be skipped with an
          integer compare (brokers only ever place a job on a site with
          enough free cores, so no broker can place a job needing more than
          ``free_max``);
        * ``backlog_min_cores`` — a lower bound on the smallest core request
          waiting — lets a whole dispatch pass be skipped (or cut short the
          moment the cluster fills up) in O(1).

        The FIFO scan order and every broker decision (including RNG draws of
        stochastic brokers, which only happen for feasible jobs) are identical
        to an exhaustive per-event rescan, so completion times are unchanged.
        """
        jobs = list(jobs)
        queue = EventQueue()
        for job in jobs:
            queue.push(Event(job.arrival_time, EventType.JOB_ARRIVAL, job))

        backlog: List[SimulatedJob] = []
        start_times: Dict[int, float] = {}
        finish_times: Dict[int, float] = {}
        runtimes: Dict[int, float] = {}
        site_of_job: Dict[int, str] = {}
        now = 0.0
        free_max = self.cluster.max_free_cores()
        # Lower bound on the smallest core request in the backlog.  It only
        # tightens on arrival and resets when the backlog drains, so it can be
        # stale-low after dispatches — that only costs a redundant pass, never
        # skips a feasible job.
        backlog_min_cores = float("inf")

        def try_dispatch(time: float) -> None:
            """Greedily start queued jobs for which the broker finds a site."""
            nonlocal free_max, backlog_min_cores
            if free_max < backlog_min_cores:
                return  # no waiting job fits anywhere
            still_waiting: List[SimulatedJob] = []
            for pos, job in enumerate(backlog):
                if free_max < backlog_min_cores:
                    # The cluster filled up mid-pass; nothing later can start.
                    still_waiting.extend(backlog[pos:])
                    break
                if job.cores > free_max:
                    still_waiting.append(job)
                    continue
                site_name = self.broker.select_site(job, self.cluster)
                if site_name is None:
                    still_waiting.append(job)
                    continue
                state = self.cluster[site_name]
                state.allocate(job.cores, time)
                free_max = self.cluster.max_free_cores()
                runtime_hours = job.runtime_at(state.site.hs23_per_core)
                start_times[job.job_id] = time
                runtimes[job.job_id] = runtime_hours
                site_of_job[job.job_id] = site_name
                queue.push(
                    Event(time + runtime_hours / _HOURS_PER_DAY, EventType.JOB_FINISH, job)
                )
            backlog[:] = still_waiting
            if not backlog:
                backlog_min_cores = float("inf")

        while queue:
            event = queue.pop()
            now = event.time
            job: SimulatedJob = event.payload
            if event.kind is EventType.JOB_ARRIVAL:
                backlog.append(job)
                backlog_min_cores = min(backlog_min_cores, job.cores)
                if max_backlog is not None and len(backlog) > max_backlog:
                    raise RuntimeError(
                        f"backlog exceeded {max_backlog} jobs; the cluster is undersized"
                    )
                try_dispatch(now)
            elif event.kind is EventType.JOB_FINISH:
                site_name = site_of_job[job.job_id]
                state = self.cluster[site_name]
                state.release(job.cores, now)
                state.completed_jobs += 1
                free_max = max(free_max, state.free_cores)
                finish_times[job.job_id] = now
                try_dispatch(now)

        horizon = max(now, 1e-9)
        for state in self.cluster.sites.values():
            state.advance_to(horizon)

        completed = sorted(finish_times.keys())
        jobs_by_id = {job.job_id: job for job in jobs}
        wait_hours = np.array(
            [(start_times[j] - jobs_by_id[j].arrival_time) * _HOURS_PER_DAY for j in completed]
        )
        runtime_hours = np.array([runtimes[j] for j in completed]) if completed else np.empty(0)

        return SimulationResult(
            broker=self.broker.name,
            n_jobs=len(jobs),
            n_completed=len(completed),
            makespan_days=float(horizon - min((j.arrival_time for j in jobs), default=0.0)),
            mean_wait_hours=float(wait_hours.mean()) if wait_hours.size else 0.0,
            p95_wait_hours=float(np.percentile(wait_hours, 95)) if wait_hours.size else 0.0,
            mean_runtime_hours=float(runtime_hours.mean()) if runtime_hours.size else 0.0,
            utilization_by_site=self.cluster.utilization_by_site(horizon),
            wait_times_hours=wait_hours,
        )


def compare_workloads(
    cluster_factory,
    broker_name: str,
    workloads: Dict[str, Sequence[SimulatedJob]],
) -> Dict[str, SimulationResult]:
    """Run the same broker over several workloads on fresh clusters.

    ``cluster_factory`` must return a *new* :class:`GridCluster` per call so
    runs do not share utilisation state.
    """
    from repro.scheduler.broker import make_broker

    results: Dict[str, SimulationResult] = {}
    for label, jobs in workloads.items():
        cluster = cluster_factory()
        broker = make_broker(broker_name, cluster)
        simulator = GridSimulator(cluster, broker)
        results[label] = simulator.run(jobs)
    return results
