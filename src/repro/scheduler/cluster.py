"""Grid cluster state: per-site slot accounting and utilisation tracking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.panda.sites import ComputingSite, SiteCatalog


@dataclass
class SiteState:
    """Mutable simulation state of one computing site."""

    site: ComputingSite
    #: Cores usable by the simulation (a scaled-down share of the real site).
    capacity: int
    busy_cores: int = 0
    completed_jobs: int = 0
    failed_jobs: int = 0
    #: Integral of busy cores over time (for utilisation), updated lazily.
    core_hours_used: float = 0.0
    _last_update: float = 0.0

    @property
    def free_cores(self) -> int:
        return self.capacity - self.busy_cores

    def advance_to(self, time: float) -> None:
        """Accumulate the busy-core integral up to ``time``."""
        if time < self._last_update:
            raise ValueError("simulation time moved backwards")
        self.core_hours_used += self.busy_cores * (time - self._last_update)
        self._last_update = time

    def allocate(self, cores: int, time: float) -> None:
        self.advance_to(time)
        if cores > self.free_cores:
            raise RuntimeError(f"site {self.site.name} has no capacity for {cores} cores")
        self.busy_cores += cores

    def release(self, cores: int, time: float) -> None:
        self.advance_to(time)
        if cores > self.busy_cores:
            raise RuntimeError(f"site {self.site.name} releasing more cores than busy")
        self.busy_cores -= cores

    def utilization(self, horizon: float) -> float:
        """Mean fraction of capacity used over ``[0, horizon]``."""
        if horizon <= 0 or self.capacity <= 0:
            return 0.0
        return min(self.core_hours_used / (self.capacity * horizon), 1.0)


class GridCluster:
    """Collection of site states built from a :class:`SiteCatalog`."""

    def __init__(
        self,
        catalog: SiteCatalog,
        *,
        capacity_scale: float = 0.02,
        min_capacity: int = 4,
    ) -> None:
        """``capacity_scale`` shrinks real site sizes so scaled-down job streams
        still produce contention (and therefore interesting wait times)."""
        if capacity_scale <= 0:
            raise ValueError("capacity_scale must be positive")
        self.catalog = catalog
        self.sites: Dict[str, SiteState] = {}
        for site in catalog.sites:
            capacity = max(int(round(site.n_cores * capacity_scale)), int(min_capacity))
            self.sites[site.name] = SiteState(site=site, capacity=capacity)

    @property
    def names(self) -> List[str]:
        return list(self.sites.keys())

    def __getitem__(self, name: str) -> SiteState:
        return self.sites[name]

    def total_capacity(self) -> int:
        return int(sum(s.capacity for s in self.sites.values()))

    def utilization_by_site(self, horizon: float) -> Dict[str, float]:
        return {name: state.utilization(horizon) for name, state in self.sites.items()}
