"""Grid cluster state: per-site slot accounting and utilisation tracking.

Besides the raw :class:`SiteState` table, the cluster maintains a
:class:`FreeCoreIndex` — a lazily-invalidated max-heap over
``(free_cores, hs23_per_core, site order)`` that is kept in sync by the site
states themselves.  Brokers and the simulator use it to answer "which site
has the most free cores?" in O(log sites) amortised instead of scanning every
site per placement.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.panda.sites import ComputingSite, SiteCatalog


@dataclass
class SiteState:
    """Mutable simulation state of one computing site."""

    site: ComputingSite
    #: Cores usable by the simulation (a scaled-down share of the real site).
    capacity: int
    busy_cores: int = 0
    completed_jobs: int = 0
    failed_jobs: int = 0
    #: Integral of busy cores over time (for utilisation), updated lazily.
    core_hours_used: float = 0.0
    _last_update: float = 0.0
    #: Invoked after every busy-core change (used by :class:`FreeCoreIndex`).
    _on_change: Optional[Callable[["SiteState"], None]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def free_cores(self) -> int:
        return self.capacity - self.busy_cores

    def advance_to(self, time: float) -> None:
        """Accumulate the busy-core integral up to ``time``."""
        if time < self._last_update:
            raise ValueError("simulation time moved backwards")
        self.core_hours_used += self.busy_cores * (time - self._last_update)
        self._last_update = time

    def allocate(self, cores: int, time: float) -> None:
        self.advance_to(time)
        if cores > self.free_cores:
            raise RuntimeError(f"site {self.site.name} has no capacity for {cores} cores")
        self.busy_cores += cores
        if self._on_change is not None:
            self._on_change(self)

    def release(self, cores: int, time: float) -> None:
        self.advance_to(time)
        if cores > self.busy_cores:
            raise RuntimeError(f"site {self.site.name} releasing more cores than busy")
        self.busy_cores -= cores
        if self._on_change is not None:
            self._on_change(self)

    def utilization(self, horizon: float) -> float:
        """Mean fraction of capacity used over ``[0, horizon]``."""
        if horizon <= 0 or self.capacity <= 0:
            return 0.0
        return min(self.core_hours_used / (self.capacity * horizon), 1.0)


class FreeCoreIndex:
    """Site-indexed free-core structure: max over ``(free, hs23, -order)``.

    A binary heap with lazy deletion: every busy-core change pushes a fresh
    entry, and stale entries (whose recorded free-core count no longer
    matches the site) are discarded when they surface at the top.  Each
    update is O(log sites) and each query O(1) amortised.

    Ties between sites with equal free cores and equal HS23 power resolve to
    the site that appears *first* in the order captured at construction time
    (the catalog order) — a stable, dict-order-independent rule that matches
    the historical first-wins linear scan.
    """

    def __init__(self, states: Sequence[SiteState]) -> None:
        self._states: List[SiteState] = list(states)
        self._heap: List[tuple] = [
            (-state.free_cores, -state.site.hs23_per_core, order)
            for order, state in enumerate(self._states)
        ]
        heapq.heapify(self._heap)
        # Compaction threshold: rebuilding once the heap holds several stale
        # entries per site keeps memory bounded on long simulations.
        self._max_entries = max(64, 8 * len(self._states))

    def update(self, state: SiteState, order: int) -> None:
        """Record a changed free-core count for the site at ``order``."""
        heapq.heappush(self._heap, (-state.free_cores, -state.site.hs23_per_core, order))
        if len(self._heap) > self._max_entries:
            self._compact()

    def _compact(self) -> None:
        self._heap = [
            (-state.free_cores, -state.site.hs23_per_core, order)
            for order, state in enumerate(self._states)
        ]
        heapq.heapify(self._heap)

    def best(self) -> Optional[SiteState]:
        """The site with the most free cores (ties: HS23, then site order)."""
        heap = self._heap
        while heap:
            neg_free, _neg_power, order = heap[0]
            state = self._states[order]
            if -neg_free == state.free_cores:
                return state
            heapq.heappop(heap)
        return None

    def max_free_cores(self) -> int:
        best = self.best()
        return best.free_cores if best is not None else 0


class GridCluster:
    """Collection of site states built from a :class:`SiteCatalog`."""

    def __init__(
        self,
        catalog: SiteCatalog,
        *,
        capacity_scale: float = 0.02,
        min_capacity: int = 4,
    ) -> None:
        """``capacity_scale`` shrinks real site sizes so scaled-down job streams
        still produce contention (and therefore interesting wait times)."""
        if capacity_scale <= 0:
            raise ValueError("capacity_scale must be positive")
        self.catalog = catalog
        self.sites: Dict[str, SiteState] = {}
        for site in catalog.sites:
            capacity = max(int(round(site.n_cores * capacity_scale)), int(min_capacity))
            self.sites[site.name] = SiteState(site=site, capacity=capacity)
        # The free-core index captures the catalog order once; site states
        # notify it on every allocate/release so brokerage queries never
        # rescan the site table.
        states = list(self.sites.values())
        self.free_index = FreeCoreIndex(states)
        for order, state in enumerate(states):
            state._on_change = (
                lambda s, _order=order, _index=self.free_index: _index.update(s, _order)
            )

    @property
    def names(self) -> List[str]:
        return list(self.sites.keys())

    def __getitem__(self, name: str) -> SiteState:
        return self.sites[name]

    def best_site(self) -> Optional[SiteState]:
        """Site with the most free cores (ties: HS23 power, then catalog order)."""
        return self.free_index.best()

    def max_free_cores(self) -> int:
        """Largest per-site free-core count, in O(1) amortised."""
        return self.free_index.max_free_cores()

    def total_capacity(self) -> int:
        return int(sum(s.capacity for s in self.sites.values()))

    def utilization_by_site(self, horizon: float) -> Dict[str, float]:
        return {name: state.utilization(horizon) for name, state in self.sites.items()}
