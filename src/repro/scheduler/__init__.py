"""Discrete-event distributed-computing simulator.

The paper motivates synthetic workloads as inputs for optimising job
allocation and data placement on the ATLAS grid ("provide more realistic
workload inputs to calibrate large-scale event-based simulations").  This
sub-package provides that downstream consumer: a discrete-event simulation of
a multi-site grid in which jobs (real or surrogate-generated) are brokered to
computing sites, queue for slots, execute for a duration derived from their
workload and the site's HS23 power, and release their slots.

The simulator lets the examples and benchmarks quantify surrogate fidelity at
the *system* level — e.g. how close site utilisations and wait times are when
the simulator is driven by TabDDPM samples instead of the held-out real
trace (Fig. 2's setting).
"""

from repro.scheduler.events import Event, EventQueue
from repro.scheduler.cluster import SiteState, GridCluster
from repro.scheduler.jobs import SimulatedJob, jobs_from_table
from repro.scheduler.broker import (
    Broker,
    DataLocalityBroker,
    LeastLoadedBroker,
    RandomBroker,
    make_broker,
)
from repro.scheduler.simulator import GridSimulator, SimulationResult

__all__ = [
    "Event",
    "EventQueue",
    "SiteState",
    "GridCluster",
    "SimulatedJob",
    "jobs_from_table",
    "Broker",
    "RandomBroker",
    "LeastLoadedBroker",
    "DataLocalityBroker",
    "make_broker",
    "GridSimulator",
    "SimulationResult",
]
