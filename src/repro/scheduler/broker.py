"""Brokerage policies: which site should run a job?

PanDA's brokerage weighs data availability, queue depth and site capability.
Three stylised policies cover the interesting regimes for the examples and
benchmarks:

* :class:`RandomBroker` — capacity-weighted random choice (a lower bound);
* :class:`LeastLoadedBroker` — pick the site with the most free cores,
  breaking ties by HS23 power (a queue-depth heuristic);
* :class:`DataLocalityBroker` — prefer sites "hosting" the job's project
  (a deterministic project→site affinity standing in for replica placement),
  falling back to the least-loaded choice when the preferred sites are full.

The same policies broker *real* serving traffic: :class:`BackendRouter`
models each model-serving backend as a one-site "grid" (capacity = the
backend's concurrency budget) and places live sampling requests with any
:class:`Broker` — the serving front door routes multi-model traffic through
it with the default :class:`LeastLoadedBroker`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.panda.sites import ComputingSite, SiteCatalog
from repro.scheduler.cluster import GridCluster
from repro.scheduler.jobs import SimulatedJob
from repro.utils.rng import SeedLike, as_rng, derive_seed


class Broker:
    """Interface: pick a site name for a job, or ``None`` to keep it queued.

    Contract: a broker must only return a site whose ``free_cores`` is at
    least ``job.cores`` (all built-in policies do).  The simulator's
    free-slot accounting relies on this to skip brokerage calls for jobs no
    site could host; a broker violating it would previously have crashed the
    allocation step anyway.
    """

    name = "broker"

    def select_site(self, job: SimulatedJob, cluster: GridCluster) -> Optional[str]:
        raise NotImplementedError


class RandomBroker(Broker):
    """Capacity-weighted random site choice among sites with room."""

    name = "random"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = as_rng(seed)

    def select_site(self, job: SimulatedJob, cluster: GridCluster) -> Optional[str]:
        eligible = [s for s in cluster.sites.values() if s.free_cores >= job.cores]
        if not eligible:
            return None
        weights = np.array([s.capacity for s in eligible], dtype=np.float64)
        weights /= weights.sum()
        choice = self._rng.choice(len(eligible), p=weights)
        return eligible[int(choice)].site.name


class LeastLoadedBroker(Broker):
    """Send the job to the site with the most free cores (ties: higher HS23).

    O(log sites) per placement: the cluster's :class:`~repro.scheduler.cluster.
    FreeCoreIndex` maintains the running maximum of ``(free_cores, hs23)``, so
    selection is a heap peek instead of a scan of every site.  The selected
    site is identical to the historical full scan: the site maximising
    ``(free_cores, hs23)`` over the eligible subset is exactly the global
    maximum whenever that maximum has enough free cores, and no site is
    eligible otherwise.  Free-core ties resolve by HS23 and then by the
    stable catalog site order — not by dict iteration order — so placements
    are reproducible.
    """

    name = "least_loaded"

    def select_site(self, job: SimulatedJob, cluster: GridCluster) -> Optional[str]:
        best = cluster.best_site()
        if best is None or best.free_cores < job.cores:
            return None
        return best.site.name


class DataLocalityBroker(Broker):
    """Prefer sites that host the job's project; fall back to least-loaded."""

    name = "data_locality"

    def __init__(self, cluster: GridCluster, *, replicas_per_project: int = 3, seed: SeedLike = None):
        self._rng = as_rng(seed)
        self._fallback = LeastLoadedBroker()
        self.replicas_per_project = int(replicas_per_project)
        self._hosting: Dict[str, List[str]] = {}
        self._site_names = list(cluster.sites.keys())

    def _hosts_of(self, project: str) -> List[str]:
        if project not in self._hosting:
            # Deterministic pseudo-random replica placement per project.  The
            # seed derives from a stable content hash (not Python's salted
            # ``hash``), so the placement is reproducible across processes.
            rng = np.random.default_rng(derive_seed(None, "replica", project))
            k = min(self.replicas_per_project, len(self._site_names))
            chosen = rng.choice(len(self._site_names), size=k, replace=False)
            self._hosting[project] = [self._site_names[i] for i in chosen]
        return self._hosting[project]

    def select_site(self, job: SimulatedJob, cluster: GridCluster) -> Optional[str]:
        # Only the job's replica subset (O(replicas_per_project) sites) is
        # scanned; ties break on the fixed replica-list order.  The full-site
        # fallback goes through the O(log sites) least-loaded index.
        hosts = self._hosts_of(job.project)
        candidates = [cluster[name] for name in hosts if cluster[name].free_cores >= job.cores]
        if candidates:
            best = max(candidates, key=lambda s: (s.free_cores, s.site.hs23_per_core))
            return best.site.name
        return self._fallback.select_site(job, cluster)


class BackendRouter:
    """Broker live serving requests across named backends with grid policies.

    Each backend (a model replica, a registry stage, a shard) becomes one
    :class:`~repro.panda.sites.ComputingSite` whose core count is the
    backend's concurrency budget, and in-flight requests are one-core
    :class:`SimulatedJob` placements made by a :class:`Broker` (default:
    :class:`LeastLoadedBroker`, so a request goes to the backend with the
    most free slots).  The router keeps its own monotonic event clock — the
    cluster's time axis orders allocate/release events, it never measures
    wall time — and is thread-safe: the front door acquires a slot per
    submitted request and releases it when the request resolves.
    """

    #: Queue slots per declared concurrency unit: admission control bounds
    #: real overload, so routing capacity is deliberately soft — the router
    #: ranks relative load, it does not reject.
    SLOTS_PER_WORKER = 64

    def __init__(
        self,
        backends: Mapping[str, int],
        *,
        broker: Optional[Broker] = None,
        slots_per_worker: int = SLOTS_PER_WORKER,
    ) -> None:
        if not backends:
            raise ValueError("BackendRouter requires at least one backend")
        if slots_per_worker < 1:
            raise ValueError(f"slots_per_worker must be positive, got {slots_per_worker}")
        sites = [
            ComputingSite(
                name=name,
                hs23_per_core=1.0,
                n_cores=max(1, int(workers)) * slots_per_worker,
                reliability=1.0,
                region="SERVING",
            )
            for name, workers in backends.items()
        ]
        self._cluster = GridCluster(SiteCatalog(sites), capacity_scale=1.0, min_capacity=1)
        self._broker = broker if broker is not None else LeastLoadedBroker()
        self._lock = threading.Lock()
        self._clock = 0.0
        self._job_counter = 0

    @property
    def backends(self) -> List[str]:
        return self._cluster.names

    def _tick(self) -> float:
        self._clock += 1.0
        return self._clock

    def acquire(self, *, rows: int = 1, project: str = "", backend: Optional[str] = None) -> str:
        """Pick a backend for one request and occupy a slot on it.

        With ``backend`` the caller pins the placement (a request naming its
        model explicitly); the slot is still occupied so the policy keeps an
        honest view of that backend's load.  Without it, the configured
        :class:`Broker` chooses — falling back to the first backend if the
        policy abstains (only possible when every slot of every backend is
        occupied; admission control is the layer that should have said no
        by then).
        """
        with self._lock:
            if backend is not None:
                state = self._cluster[backend]  # KeyError on unknown backends
                if state.free_cores >= 1:
                    state.allocate(1, self._tick())
                return backend
            self._job_counter += 1
            job = SimulatedJob(
                job_id=self._job_counter,
                arrival_time=self._clock,
                cores=1,
                workload=float(max(rows, 1)),
                project=project,
            )
            name = self._broker.select_site(job, self._cluster)
            if name is None:
                name = self._cluster.names[0]
            else:
                self._cluster[name].allocate(1, self._tick())
            return name

    def release(self, name: str) -> None:
        """Free the slot a completed request held on ``name`` (idempotent
        for over-releases: a fully idle backend stays idle)."""
        with self._lock:
            state = self._cluster[name]
            if state.busy_cores > 0:
                state.release(1, self._tick())

    def load(self) -> Dict[str, int]:
        """In-flight requests per backend (the routing signal, for stats)."""
        with self._lock:
            return {
                name: state.busy_cores for name, state in self._cluster.sites.items()
            }


def make_broker(name: str, cluster: GridCluster, *, seed: SeedLike = None) -> Broker:
    """Factory used by the experiments CLI."""
    key = name.strip().lower()
    if key == "random":
        return RandomBroker(seed=seed)
    if key in ("least_loaded", "leastloaded"):
        return LeastLoadedBroker()
    if key in ("data_locality", "datalocality", "locality"):
        return DataLocalityBroker(cluster, seed=seed)
    raise ValueError(f"unknown broker {name!r}; options: random, least_loaded, data_locality")
