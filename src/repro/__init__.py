"""repro — reproduction of "AI Surrogate Model for Distributed Computing Workloads" (SC 2024).

The package provides, end to end:

* a synthetic PanDA/ATLAS workload substrate (:mod:`repro.panda`),
* a mixed-type tabular data layer (:mod:`repro.tabular`),
* a numpy neural-network framework (:mod:`repro.nn`),
* the four generative surrogates of the paper plus extra baselines
  (:mod:`repro.models`),
* the five evaluation metric families of Table I (:mod:`repro.metrics`),
* a gradient-boosting regressor used by the efficacy metric
  (:mod:`repro.boosting`),
* a discrete-event grid simulator demonstrating the downstream use of
  synthetic workloads (:mod:`repro.scheduler`),
* the experiment harness regenerating every table and figure
  (:mod:`repro.experiments`), and
* a sharded, multi-process sampling service with a model registry
  (:mod:`repro.serve`).

Quickstart
----------
>>> from repro import PandaWorkloadGenerator, GeneratorConfig, create_surrogate
>>> from repro.tabular import train_test_split
>>> gen = PandaWorkloadGenerator(GeneratorConfig(n_jobs=5000, seed=1))
>>> table = gen.generate_training_table()
>>> train, test = train_test_split(table, 0.2, seed=1)
>>> model = create_surrogate("smote")
>>> synthetic = model.fit(train).sample(len(train), seed=2)

Performance
-----------
The hottest loops run through a vectorized engine:

* **boosting** — the histogram tree builds all per-feature histograms with a
  single flattened ``np.bincount`` per node, derives each sibling histogram
  as parent-minus-scanned-child, and routes predictions through packed node
  arrays instead of Python node objects; feature binning is one stacked
  ``np.searchsorted`` plus a rank table, with no per-feature loop
  (:mod:`repro.boosting.tree`);
* **metrics** — the association matrix integer-codes every column once and
  fills both Theil directions of a categorical pair from one contingency
  table, with the numerical block as a single BLAS Gram product
  (:func:`repro.metrics.correlation.association_matrix`);
* **panda** — dataset names are parsed once per *distinct* name
  (:func:`repro.panda.daod.parse_dataset_names`), so the filtering funnel and
  the workload generator scale with the number of datasets, not rows;
* **scheduler** — the grid simulator keeps free-slot watermarks next to its
  event heap so a saturated backlog is never rescanned with brokerage calls
  (:mod:`repro.scheduler.simulator`), and the cluster maintains a
  lazily-invalidated free-core heap so least-loaded brokerage is O(log
  sites) per placement with stable, dict-order-independent tie-breaking
  (:mod:`repro.scheduler.cluster`, :mod:`repro.scheduler.broker`);
* **nn / models** — the deep surrogates (TVAE, CTABGAN+, TabDDPM) train
  through fused autograd: one graph node per Linear+activation pair with
  pre-allocated gradient buffers (:class:`repro.nn.layers.FusedLinear`),
  fused mixed losses / block activations / VAE heads that replace the
  per-encoded-column slice nodes (:mod:`repro.nn.fused`), flat-buffer
  in-place Adam/SGD steps (:mod:`repro.nn.optim`), encode-once minibatching
  and a fully vectorised multinomial diffusion step
  (:mod:`repro.models.tabddpm.multinomial`).  Every fused path is
  bit-identical to the unfused composition — same losses, parameters and
  samples for a fixed seed (``tests/test_train_equivalence.py``);
* **sampling / encoding** — mode-specific normalisation fits its per-column
  Gaussian mixtures through a duplicate-value-compressed Lloyd/EM
  (:mod:`repro.mixture.gmm`), the TabDDPM reverse chain denoises every
  same-width categorical block as one lane-grouped plane pass per step
  (:meth:`repro.models.tabddpm.multinomial.MultinomialBlockDiffusion.p_sample_into`),
  and CTABGAN+ draws its block categories straight from the stacked raw
  generator logits (:mod:`repro.models.ctabgan`) — all bit-identical to the
  per-block chains in the default mode
  (``tests/test_sampling_equivalence.py``), with a documented relaxed
  ``condition_mode="fast"`` for pure serving throughput.

Serving modes
-------------
Every surrogate's ``sample`` accepts ``sampling_mode="exact"|"fast"``:

* **exact** (default) — bit-identical to the seed implementation for a fixed
  seed; the mode experiments and paper artefacts use.
* **fast** — the relaxed serving mode: the same fitted model and the same
  output *distribution* (KS / chi-squared-validated against exact-mode
  samples in ``tests/test_serving_modes.py``), but a different RNG stream
  and float32 pre-packed network forwards
  (:class:`repro.nn.serving.PackedForward`).  TabDDPM serves its denoiser
  through a float32 weight cache and a padded lane-plane posterior kernel;
  CTABGAN+/TVAE run request-sized fused generator/decoder forwards freed
  from the training batch size; SMOTE and the Gaussian copula (already
  single-pass) fall back to their exact path.

``Surrogate.sample_batches(n, chunk_size)`` streams a request of any size in
bounded-memory chunks (one ``SeedSequence`` child stream per chunk), so
million-row serving requests never materialise at once.

Serving architecture (:mod:`repro.serve`)
-----------------------------------------
The serving layer stacks three pieces on the streaming API:

* :class:`~repro.serve.ShardedSampler` fans a request's ``sample_batches``
  chunks across a persistent pool of worker processes, each holding a
  deserialized model snapshot with warmed caches, and reassembles the chunks
  in order.  **The sharding contract:** because chunk ``i`` draws from the
  ``i``-th ``SeedSequence`` child of the request seed, the output bytes for
  a given ``(seed, chunk_size)`` are identical for any worker count
  (including the pool-free ``workers=1`` path) and equal to the
  single-process ``sample_batches`` concatenation — sharding changes wall
  clock, never data (``tests/test_serve_sharded.py``).
* :class:`~repro.serve.ModelRegistry` stores fitted-surrogate snapshots
  under versioned names (``<root>/<name>/vN.pkl``) and warm-starts the
  packed serving caches at registration/load
  (:meth:`~repro.models.base.Surrogate.warm_serving_caches`), so a restarted
  server answers its first request at steady-state latency.
* :class:`~repro.serve.SamplingService` is the front end: a thread-safe
  request queue whose dispatcher coalesces concurrently queued requests into
  one sharded pool pass (micro-batching — invisible in the bytes because
  every request keeps its own seed's chunk streams, it only removes
  queueing latency), backpressure via a bounded in-flight row budget, and a
  ``stats()`` endpoint (rows/s, queue depth, p50/p95 latency).

``repro-experiments serve`` drives the stack end to end;
``examples/serving_throughput.py`` is the narrated tour.  Throughput is
recorded by the ``serve_sharded_tvae`` / ``serve_sharded_tabddpm`` kernels
in ``benchmarks/BENCH_hotpaths.json`` (single-worker exact-mode serving loop
as the baseline; see ``benchmarks/README.md`` for the contract).

Degenerate inputs —
constant numerical columns, single-category columns, ``sample(0)``,
3-row training tables — are first-class: ``tests/test_degenerate_inputs.py``
runs every surrogate and the metrics layer over them with RuntimeWarnings
promoted to errors.

``benchmarks/bench_hotpaths.py`` times every kernel against the seed
implementation at two problem sizes and writes ``BENCH_hotpaths.json``;
``benchmarks/check_regression.py`` fails when a kernel regresses more than 2x
against the committed baseline (``python -m benchmarks.ci`` chains it after
the test suite), and ``tests/test_perf_equivalence.py`` proves the optimized
kernels reproduce the seed outputs.  See ``benchmarks/README.md`` for the
harness, baseline and re-baselining policy.  Timing helpers live in
:mod:`repro.utils.profiling`.

Continuous integration
----------------------
Hosted CI (``.github/workflows/ci.yml`` — badge:
``https://github.com/<org>/<repo>/actions/workflows/ci.yml/badge.svg``) runs
three jobs on every push and pull request: ruff lint, the tier-1 pytest
suite across Python 3.10–3.12, and the hot-path perf gate with a
CI-loosened threshold (``python -m benchmarks.ci --skip-tests --factor 3``).
"""

from repro.panda import GeneratorConfig, PandaWorkloadGenerator, FilteringPipeline, PANDA_SCHEMA
from repro.tabular import Table, TableSchema, train_test_split
from repro.models import (
    CTABGANPlusSurrogate,
    GaussianCopulaSurrogate,
    SMOTESurrogate,
    Surrogate,
    TVAESurrogate,
    TabDDPMSurrogate,
    available_surrogates,
    create_surrogate,
)
from repro.metrics import SurrogateScore, evaluate_surrogate_data, format_table

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PandaWorkloadGenerator",
    "GeneratorConfig",
    "FilteringPipeline",
    "PANDA_SCHEMA",
    "Table",
    "TableSchema",
    "train_test_split",
    "Surrogate",
    "SMOTESurrogate",
    "GaussianCopulaSurrogate",
    "TVAESurrogate",
    "CTABGANPlusSurrogate",
    "TabDDPMSurrogate",
    "available_surrogates",
    "create_surrogate",
    "SurrogateScore",
    "evaluate_surrogate_data",
    "format_table",
]
