"""Aggregate evaluation: one Table-I row per surrogate model.

:func:`evaluate_surrogate_data` computes all five paper metrics for one
synthetic table; :func:`format_table` renders a list of scores in the layout
of the paper's Table I so the benchmark harness can print it directly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.correlation import diff_corr
from repro.metrics.distribution import mean_jsd, mean_wasserstein
from repro.metrics.mlef import MLEFConfig, diff_mlef
from repro.metrics.privacy import distance_to_closest_record
from repro.tabular.table import Table
from repro.utils.rng import SeedLike


@dataclass
class SurrogateScore:
    """All Table-I metrics for one surrogate model."""

    model: str
    wd: float
    jsd: float
    diff_corr: float
    dcr: float
    diff_mlef: float
    per_column_wd: Dict[str, float] = field(default_factory=dict)
    per_column_jsd: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def as_row(self) -> Dict[str, float]:
        """Only the five headline numbers (Table I row)."""
        return {
            "WD": self.wd,
            "JSD": self.jsd,
            "diff-CORR": self.diff_corr,
            "DCR": self.dcr,
            "diff-MLEF": self.diff_mlef,
        }


def evaluate_surrogate_data(
    model_name: str,
    real_train: Table,
    real_test: Table,
    synthetic: Table,
    *,
    mlef_config: Optional[MLEFConfig] = None,
    compute_mlef: bool = True,
    seed: SeedLike = None,
) -> SurrogateScore:
    """Compute every Table-I metric for one synthetic dataset.

    Parameters
    ----------
    model_name:
        Label used in reports (e.g. ``"TabDDPM"``).
    real_train, real_test:
        The real training and held-out tables (the paper's 80/20 split).
    synthetic:
        Data sampled from the surrogate after fitting on ``real_train``.
    mlef_config:
        Regressor settings for the efficacy metric.
    compute_mlef:
        The efficacy metric trains two boosted-tree models and dominates the
        metric cost; disable it for quick fidelity-only sweeps.
    """
    wd, per_wd = mean_wasserstein(real_train, synthetic)
    jsd, per_jsd = mean_jsd(real_train, synthetic)
    corr = diff_corr(real_train, synthetic)
    dcr = distance_to_closest_record(real_train, synthetic)
    if compute_mlef:
        mlef_gap = diff_mlef(real_train, synthetic, real_test, mlef_config, seed=seed)
    else:
        mlef_gap = float("nan")
    return SurrogateScore(
        model=model_name,
        wd=wd,
        jsd=jsd,
        diff_corr=corr,
        dcr=dcr,
        diff_mlef=mlef_gap,
        per_column_wd=per_wd,
        per_column_jsd=per_jsd,
    )


def format_table(scores: Sequence[SurrogateScore], *, title: str = "PERFORMANCE COMPARISONS ON SURROGATE MODELS") -> str:
    """Render scores in the layout of the paper's Table I."""
    header = f"{'Model':<12} {'WD↓':>8} {'JSD↓':>8} {'diff-CORR↓':>12} {'DCR↑':>8} {'diff-MLEF↓':>12}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for score in scores:
        lines.append(
            f"{score.model:<12} {score.wd:>8.3f} {score.jsd:>8.3f} "
            f"{score.diff_corr:>12.3f} {score.dcr:>8.3f} {score.diff_mlef:>12.3f}"
        )
    return "\n".join(lines)


def rank_models(scores: Sequence[SurrogateScore]) -> Dict[str, List[str]]:
    """Rank model names per metric (best first), mirroring the paper's reading
    of Table I (lower is better for everything except DCR)."""
    by_metric: Dict[str, List[str]] = {}
    metric_specs = [
        ("WD", lambda s: s.wd, False),
        ("JSD", lambda s: s.jsd, False),
        ("diff-CORR", lambda s: s.diff_corr, False),
        ("DCR", lambda s: s.dcr, True),
        ("diff-MLEF", lambda s: s.diff_mlef, False),
    ]
    for name, key, reverse in metric_specs:
        ordered = sorted(scores, key=key, reverse=reverse)
        by_metric[name] = [s.model for s in ordered]
    return by_metric
