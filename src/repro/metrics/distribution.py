"""Per-feature distributional similarity metrics (paper Fig. 4 and the WD/JSD
columns of Table I)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tabular.table import Table


def wasserstein_1d(real: np.ndarray, synthetic: np.ndarray, *, normalize: bool = True) -> float:
    """First Wasserstein (earth mover's) distance between two 1-D samples.

    When ``normalize`` is true both samples are min-max scaled by the *real*
    sample's range first, following the convention of the tabular-generation
    literature so that WD values are comparable across features with
    different units.
    """
    a = np.asarray(real, dtype=np.float64)
    b = np.asarray(synthetic, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    if normalize:
        lo, hi = float(a.min()), float(a.max())
        span = hi - lo if hi > lo else 1.0
        a = (a - lo) / span
        b = (b - lo) / span
    # Closed form via the quantile functions: integrate |F_a^{-1} - F_b^{-1}|.
    a_sorted = np.sort(a)
    b_sorted = np.sort(b)
    # Evaluate both quantile functions on a merged probability grid.
    probs = np.linspace(0.0, 1.0, max(a.size, b.size), endpoint=False) + 0.5 / max(a.size, b.size)
    qa = np.quantile(a_sorted, probs)
    qb = np.quantile(b_sorted, probs)
    return float(np.mean(np.abs(qa - qb)))


def categorical_frequencies(
    values: np.ndarray, categories: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Normalised frequency of each category (optionally on a fixed support)."""
    arr = np.asarray(values).astype(str)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    cats, counts = np.unique(arr, return_counts=True)
    freq = {str(c): float(n) / arr.size for c, n in zip(cats, counts)}
    if categories is not None:
        freq = {str(c): freq.get(str(c), 0.0) for c in categories}
    return freq


def jensen_shannon_divergence(real: np.ndarray, synthetic: np.ndarray) -> float:
    """JSD (base 2, in [0, 1]) between the category distributions of two samples."""
    support = sorted(set(np.asarray(real).astype(str)) | set(np.asarray(synthetic).astype(str)))
    p = np.array([categorical_frequencies(real, support)[c] for c in support])
    q = np.array([categorical_frequencies(synthetic, support)[c] for c in support])
    m = 0.5 * (p + q)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)


def mean_wasserstein(
    real: Table, synthetic: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[float, Dict[str, float]]:
    """Mean (and per-column) normalised WD over numerical columns."""
    cols = list(columns) if columns is not None else real.schema.numerical
    per_column = {c: wasserstein_1d(real[c], synthetic[c]) for c in cols}
    mean = float(np.mean(list(per_column.values()))) if per_column else 0.0
    return mean, per_column


def mean_jsd(
    real: Table, synthetic: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[float, Dict[str, float]]:
    """Mean (and per-column) JSD over categorical columns."""
    cols = list(columns) if columns is not None else real.schema.categorical
    per_column = {c: jensen_shannon_divergence(real[c], synthetic[c]) for c in cols}
    mean = float(np.mean(list(per_column.values()))) if per_column else 0.0
    return mean, per_column


def top_k_frequencies(
    real: Table, synthetic: Table, column: str, k: int = 5
) -> List[Dict[str, object]]:
    """Top-``k`` real categories with real vs synthetic frequencies (Fig. 4b)."""
    real_freq = categorical_frequencies(real[column])
    synth_freq = categorical_frequencies(synthetic[column])
    top = sorted(real_freq.items(), key=lambda kv: -kv[1])[:k]
    return [
        {
            "category": cat,
            "real": freq,
            "synthetic": synth_freq.get(cat, 0.0),
        }
        for cat, freq in top
    ]


def histogram_series(
    real: np.ndarray, synthetic: np.ndarray, *, bins: int = 50
) -> Dict[str, np.ndarray]:
    """Aligned density histograms of a numerical feature (Fig. 4a series).

    Bin edges are derived from the union of both samples so the real and
    synthetic series are directly comparable.
    """
    a = np.asarray(real, dtype=np.float64)
    b = np.asarray(synthetic, dtype=np.float64)
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    real_density, _ = np.histogram(a, bins=edges, density=True)
    synth_density, _ = np.histogram(b, bins=edges, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return {"centers": centers, "real": real_density, "synthetic": synth_density}
