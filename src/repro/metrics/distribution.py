"""Per-feature distributional similarity metrics (paper Fig. 4 and the WD/JSD
columns of Table I), plus windowed drift detection on top of them.

The second half of this module turns the static two-sample statistics
(KS / chi-squared / JSD) into *online* drift detectors: a
:class:`DriftMonitor` holds a reference table, scores every incoming
window column-by-column against it, and fires a :class:`DriftEvent` only
after a statistic stays above its threshold for ``debounce`` consecutive
windows — one transient noisy window never triggers a retrain.  The
detectors are pure functions of (reference, window stream), so detection
is exactly as deterministic as the stream that feeds it; the scenario
engine (:mod:`repro.scenarios`) relies on that to make whole
drift→retrain→promote runs replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tabular.table import CategoricalColumn, Table

#: Values accepted by the categorical statistics: raw string arrays or a
#: dictionary-encoded column (the codes fast path — no string decode).
CategoricalValues = Sequence


def _category_counts(values: CategoricalValues) -> Tuple[np.ndarray, np.ndarray, int]:
    """``(sorted_present_categories, counts, n_rows)`` for either value form.

    The :class:`CategoricalColumn` branch counts via ``np.bincount`` on the
    codes and sorts the vocabulary once; it produces exactly what
    ``np.unique(decoded, return_counts=True)`` would, without materialising
    any per-row strings.
    """
    if isinstance(values, CategoricalColumn):
        vocab = values.vocab_array()
        counts = np.bincount(values.codes, minlength=vocab.size)
        order = np.argsort(vocab, kind="stable")
        vocab, counts = vocab[order], counts[order]
        present = counts > 0
        return vocab[present], counts[present], len(values)
    arr = np.asarray(values).astype(str)
    if arr.size == 0:
        return np.empty(0, dtype="<U1"), np.empty(0, dtype=np.int64), 0
    cats, counts = np.unique(arr, return_counts=True)
    return cats, counts, int(arr.size)


def _categorical_values(table: Table, name: str) -> CategoricalValues:
    """Prefer the dictionary-encoded column; fall back to the decoded view."""
    try:
        return table.categorical_column(name)
    except ValueError:
        return table[name]


def wasserstein_1d(real: np.ndarray, synthetic: np.ndarray, *, normalize: bool = True) -> float:
    """First Wasserstein (earth mover's) distance between two 1-D samples.

    When ``normalize`` is true both samples are min-max scaled by the *real*
    sample's range first, following the convention of the tabular-generation
    literature so that WD values are comparable across features with
    different units.
    """
    a = np.asarray(real, dtype=np.float64)
    b = np.asarray(synthetic, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    if normalize:
        lo, hi = float(a.min()), float(a.max())
        span = hi - lo if hi > lo else 1.0
        a = (a - lo) / span
        b = (b - lo) / span
    # Closed form via the quantile functions: integrate |F_a^{-1} - F_b^{-1}|.
    a_sorted = np.sort(a)
    b_sorted = np.sort(b)
    # Evaluate both quantile functions on a merged probability grid.
    probs = np.linspace(0.0, 1.0, max(a.size, b.size), endpoint=False) + 0.5 / max(a.size, b.size)
    qa = np.quantile(a_sorted, probs)
    qb = np.quantile(b_sorted, probs)
    return float(np.mean(np.abs(qa - qb)))


def categorical_frequencies(
    values: CategoricalValues, categories: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Normalised frequency of each category (optionally on a fixed support)."""
    cats, counts, size = _category_counts(values)
    if size == 0:
        raise ValueError("values must be non-empty")
    freq = {str(c): float(n) / size for c, n in zip(cats, counts)}
    if categories is not None:
        freq = {str(c): freq.get(str(c), 0.0) for c in categories}
    return freq


def jensen_shannon_divergence(
    real: CategoricalValues, synthetic: CategoricalValues
) -> float:
    """JSD (base 2, in [0, 1]) between the category distributions of two samples."""
    cats_a, counts_a, n_a = _category_counts(real)
    cats_b, counts_b, n_b = _category_counts(synthetic)
    if n_a == 0 or n_b == 0:
        raise ValueError("values must be non-empty")
    support = np.union1d(cats_a, cats_b)
    p = np.zeros(support.size, dtype=np.float64)
    q = np.zeros(support.size, dtype=np.float64)
    p[np.searchsorted(support, cats_a)] = counts_a / float(n_a)
    q[np.searchsorted(support, cats_b)] = counts_b / float(n_b)
    m = 0.5 * (p + q)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)


def mean_wasserstein(
    real: Table, synthetic: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[float, Dict[str, float]]:
    """Mean (and per-column) normalised WD over numerical columns."""
    cols = list(columns) if columns is not None else real.schema.numerical
    per_column = {c: wasserstein_1d(real[c], synthetic[c]) for c in cols}
    mean = float(np.mean(list(per_column.values()))) if per_column else 0.0
    return mean, per_column


def mean_jsd(
    real: Table, synthetic: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[float, Dict[str, float]]:
    """Mean (and per-column) JSD over categorical columns."""
    cols = list(columns) if columns is not None else real.schema.categorical
    per_column = {
        c: jensen_shannon_divergence(
            _categorical_values(real, c), _categorical_values(synthetic, c)
        )
        for c in cols
    }
    mean = float(np.mean(list(per_column.values()))) if per_column else 0.0
    return mean, per_column


def top_k_frequencies(
    real: Table, synthetic: Table, column: str, k: int = 5
) -> List[Dict[str, object]]:
    """Top-``k`` real categories with real vs synthetic frequencies (Fig. 4b)."""
    real_freq = categorical_frequencies(_categorical_values(real, column))
    synth_freq = categorical_frequencies(_categorical_values(synthetic, column))
    top = sorted(real_freq.items(), key=lambda kv: -kv[1])[:k]
    return [
        {
            "category": cat,
            "real": freq,
            "synthetic": synth_freq.get(cat, 0.0),
        }
        for cat, freq in top
    ]


def ks_statistic(real: np.ndarray, synthetic: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic ``sup_x |F_a(x) - F_b(x)|``.

    Distribution-free, bounded in [0, 1], and exactly zero for identical
    samples — the numerical-drift statistic of :class:`DriftMonitor`.
    """
    a = np.sort(np.asarray(real, dtype=np.float64))
    b = np.sort(np.asarray(synthetic, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    # Evaluate both empirical CDFs at every observed point of either sample.
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def chi_squared_statistic(
    real: CategoricalValues,
    synthetic: CategoricalValues,
    *,
    normalized: bool = False,
) -> float:
    """Two-sample chi-squared homogeneity statistic over categorical samples.

    Expected counts come from the pooled category frequencies; cells whose
    pooled count is zero are skipped.  With ``normalized=True`` the statistic
    is divided by ``(n_a + n_b) * (k - 1)`` (its Cramér-style upper bound),
    giving a [0, 1] value comparable across window sizes and supports —
    that is the form :class:`DriftMonitor` thresholds.
    """
    cats_a, raw_a, n_a = _category_counts(real)
    cats_b, raw_b, n_b = _category_counts(synthetic)
    if n_a == 0 or n_b == 0:
        raise ValueError("both samples must be non-empty")
    support = np.union1d(cats_a, cats_b)
    counts_a = np.zeros(support.size, dtype=np.float64)
    counts_b = np.zeros(support.size, dtype=np.float64)
    counts_a[np.searchsorted(support, cats_a)] = raw_a
    counts_b[np.searchsorted(support, cats_b)] = raw_b
    pooled = (counts_a + counts_b) / (n_a + n_b)
    expected_a = pooled * n_a
    expected_b = pooled * n_b
    mask = pooled > 0
    stat = float(
        np.sum((counts_a[mask] - expected_a[mask]) ** 2 / expected_a[mask])
        + np.sum((counts_b[mask] - expected_b[mask]) ** 2 / expected_b[mask])
    )
    if normalized:
        dof_bound = (n_a + n_b) * max(int(support.size) - 1, 1)
        stat = stat / dof_bound
    return stat


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds and debounce for the windowed drift detectors.

    numerical_threshold:
        KS-statistic level above which a numerical window counts as
        breaching.  The KS statistic of two same-distribution windows of
        ``w`` rows concentrates around ``~1.5/sqrt(w)``; the default 0.22
        stays quiet for windows of 256+ rows (false-positive bound tested
        over 10k windows) while a half-sigma mean shift clears it.
    categorical_threshold:
        Level for the categorical statistic (JSD in [0, 1] by default, or
        the normalized chi-squared when ``categorical_stat="chi2"``).
    categorical_stat:
        ``"jsd"`` or ``"chi2"`` — which statistic categorical columns use.
    debounce:
        Consecutive breaching windows required before a detector fires.
        Sustained drift fires exactly once; the detector then latches until
        :meth:`DriftMonitor.rebaseline` (post-retrain) resets it.
    min_window:
        Windows smaller than this are ignored (too noisy to score).
    """

    numerical_threshold: float = 0.22
    categorical_threshold: float = 0.05
    categorical_stat: str = "jsd"
    debounce: int = 3
    min_window: int = 32

    def __post_init__(self) -> None:
        if self.categorical_stat not in ("jsd", "chi2"):
            raise ValueError(
                f"categorical_stat must be 'jsd' or 'chi2', got {self.categorical_stat!r}"
            )
        if self.debounce < 1:
            raise ValueError(f"debounce must be at least 1, got {self.debounce}")
        if self.numerical_threshold <= 0 or self.categorical_threshold <= 0:
            raise ValueError("drift thresholds must be positive")


@dataclass(frozen=True)
class DriftEvent:
    """One sustained-drift detection: which column, which statistic, when."""

    column: str
    kind: str  #: "numerical" | "categorical"
    statistic: str  #: "ks" | "jsd" | "chi2"
    value: float  #: the statistic at the window that completed the debounce
    threshold: float
    window_index: int  #: 0-based index of the firing window since (re)baseline

    def as_dict(self) -> Dict[str, object]:
        return {
            "column": self.column,
            "kind": self.kind,
            "statistic": self.statistic,
            "value": round(float(self.value), 12),
            "threshold": self.threshold,
            "window_index": self.window_index,
        }


class _ColumnDetector:
    """Sliding-window drift state of one column (reference vs latest window)."""

    def __init__(
        self, column: str, kind: str, reference: np.ndarray, config: DriftConfig
    ) -> None:
        self.column = column
        self.kind = kind
        self.config = config
        if kind == "numerical":
            self.statistic = "ks"
            self.threshold = config.numerical_threshold
            self._reference = np.sort(np.asarray(reference, dtype=np.float64))
        else:
            self.statistic = config.categorical_stat
            self.threshold = config.categorical_threshold
            # Keep the dictionary-encoded form when given one: every window
            # score then runs on codes without decoding the reference.
            if isinstance(reference, CategoricalColumn):
                self._reference = reference
            else:
                self._reference = np.asarray(reference).astype(str)
        self.streak = 0
        self.fired = False
        self.last_value = 0.0

    def score(self, window: np.ndarray) -> float:
        if self.kind == "numerical":
            values = np.sort(np.asarray(window, dtype=np.float64))
            grid = np.concatenate([self._reference, values])
            cdf_a = np.searchsorted(self._reference, grid, side="right") / self._reference.size
            cdf_b = np.searchsorted(values, grid, side="right") / values.size
            return float(np.max(np.abs(cdf_a - cdf_b)))
        if self.statistic == "jsd":
            return jensen_shannon_divergence(self._reference, window)
        return chi_squared_statistic(self._reference, window, normalized=True)

    def update(self, window: np.ndarray, window_index: int) -> Optional[DriftEvent]:
        """Score one window; returns an event when the debounce completes."""
        self.last_value = value = self.score(window)
        if value <= self.threshold:
            self.streak = 0
            return None
        self.streak += 1
        if self.fired or self.streak < self.config.debounce:
            return None
        self.fired = True  # latched until rebaseline
        return DriftEvent(
            column=self.column,
            kind=self.kind,
            statistic=self.statistic,
            value=value,
            threshold=self.threshold,
            window_index=window_index,
        )


class DriftMonitor:
    """Windowed drift detection over every column of a table stream.

    Built from a *reference* table (the distribution the serving model was
    trained on), the monitor scores each :meth:`observe`-d window per column
    — KS for numericals, JSD or normalized chi-squared for categoricals —
    and emits a :class:`DriftEvent` per column whose statistic stayed above
    threshold for ``debounce`` consecutive windows.  A fired column latches
    (no duplicate events) until :meth:`rebaseline` installs a new reference
    — the post-retrain reset of the drift→retrain→promote loop.

    Degenerate windows are safe by construction: constant columns score 0
    against themselves, unseen categories enter the pooled support, and
    windows shorter than ``min_window`` are skipped entirely.
    """

    def __init__(
        self,
        reference: Table,
        *,
        config: Optional[DriftConfig] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        self.config = config if config is not None else DriftConfig()
        self._window_index = 0
        self._detectors: Dict[str, _ColumnDetector] = {}
        self._build(reference, columns)

    def _build(self, reference: Table, columns: Optional[Sequence[str]]) -> None:
        schema = reference.schema
        selected = set(columns) if columns is not None else None
        self._columns: List[str] = []
        for name in schema.numerical:
            if selected is None or name in selected:
                self._detectors[name] = _ColumnDetector(
                    name, "numerical", reference[name], self.config
                )
                self._columns.append(name)
        for name in schema.categorical:
            if selected is None or name in selected:
                self._detectors[name] = _ColumnDetector(
                    name, "categorical", reference.categorical_column(name), self.config
                )
                self._columns.append(name)
        if not self._detectors:
            raise ValueError("reference table has no monitorable columns")

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def window_index(self) -> int:
        """Windows observed since the last (re)baseline."""
        return self._window_index

    @property
    def drifted_columns(self) -> List[str]:
        """Columns whose detector has fired since the last (re)baseline."""
        return [name for name in self._columns if self._detectors[name].fired]

    def last_values(self) -> Dict[str, float]:
        """Most recent per-column statistic values (diagnostics/reporting)."""
        return {name: self._detectors[name].last_value for name in self._columns}

    def observe(self, window: Table) -> List[DriftEvent]:
        """Score one window; returns the drift events that fired on it."""
        if window.n_rows < self.config.min_window:
            return []
        index = self._window_index
        self._window_index += 1
        events = []
        for name in self._columns:
            detector = self._detectors[name]
            if detector.kind == "categorical":
                values = _categorical_values(window, name)
            else:
                values = window[name]
            event = detector.update(values, index)
            if event is not None:
                events.append(event)
        return events

    def rebaseline(self, reference: Table) -> None:
        """Install a new reference (post-retrain) and reset all detectors."""
        columns = self._columns
        self._detectors = {}
        self._window_index = 0
        self._build(reference, columns)


def histogram_series(
    real: np.ndarray, synthetic: np.ndarray, *, bins: int = 50
) -> Dict[str, np.ndarray]:
    """Aligned density histograms of a numerical feature (Fig. 4a series).

    Bin edges are derived from the union of both samples so the real and
    synthetic series are directly comparable.
    """
    a = np.asarray(real, dtype=np.float64)
    b = np.asarray(synthetic, dtype=np.float64)
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    real_density, _ = np.histogram(a, bins=edges, density=True)
    synth_density, _ = np.histogram(b, bins=edges, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return {"centers": centers, "real": real_density, "synthetic": synth_density}
