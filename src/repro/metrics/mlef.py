"""Machine-learning efficacy (MLEF) and diff-MLEF.

MLEF asks: *if we train a predictive model on the synthetic table instead of
the real one, how much worse does it do on real held-out data?*  Following the
paper, the predictive task is regressing the natural log of the ``workload``
column with a boosted-tree model (CatBoost in the paper, our
:class:`~repro.boosting.gbdt.TabularBoostingRegressor` here), and the reported
number is the test-set mean squared error.  ``diff-MLEF`` subtracts the score
of a model trained on the real training data, so 0 is the ideal value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.boosting.gbdt import TabularBoostingRegressor
from repro.tabular.table import Table
from repro.utils.rng import SeedLike


@dataclass
class MLEFConfig:
    """Hyper-parameters of the efficacy regressor.

    The defaults are a CPU-friendly scaled-down version of the paper's
    CatBoost settings (200 iterations, depth 10, lr 1.0); pass
    ``MLEFConfig.paper()`` to use the paper's values verbatim.
    """

    target_column: str = "workload"
    log_target: bool = True
    n_estimators: int = 60
    learning_rate: float = 0.3
    max_depth: int = 6
    min_samples_leaf: int = 10
    max_bins: int = 64

    @classmethod
    def paper(cls) -> "MLEFConfig":
        return cls(n_estimators=200, learning_rate=1.0, max_depth=10)


def machine_learning_efficacy(
    train: Table,
    test: Table,
    config: Optional[MLEFConfig] = None,
    *,
    seed: SeedLike = None,
) -> float:
    """Test-set MSE of a regressor trained on ``train`` and evaluated on ``test``."""
    config = config or MLEFConfig()
    model = TabularBoostingRegressor(
        target_column=config.target_column,
        n_estimators=config.n_estimators,
        learning_rate=config.learning_rate,
        max_depth=config.max_depth,
        min_samples_leaf=config.min_samples_leaf,
        max_bins=config.max_bins,
        log_target=config.log_target,
        seed=seed,
    )
    model.fit(train)
    return model.score_mse(test)


def diff_mlef(
    real_train: Table,
    synthetic: Table,
    real_test: Table,
    config: Optional[MLEFConfig] = None,
    *,
    seed: SeedLike = None,
) -> float:
    """MLEF(synthetic) − MLEF(real train); 0 means synthetic data trains equally well."""
    synthetic_score = machine_learning_efficacy(synthetic, real_test, config, seed=seed)
    real_score = machine_learning_efficacy(real_train, real_test, config, seed=seed)
    return float(synthetic_score - real_score)
