"""Pairwise association metrics and the diff-CORR score (paper Fig. 5, Table I).

Three association measures are combined into one square matrix over all
columns, exactly as the paper describes:

* numerical–numerical: absolute Pearson correlation,
* categorical–numerical: correlation ratio (eta),
* categorical–categorical: Theil's U (an asymmetric, entropy-based measure).

The diff-CORR score is the mean element-wise L2 distance between the real and
synthetic association matrices.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.tabular.schema import ColumnKind
from repro.tabular.table import Table


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (0.0 when either side is constant)."""
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("inputs must have the same shape")
    if a.size < 2:
        return 0.0
    a_std = a.std()
    b_std = b.std()
    if a_std == 0 or b_std == 0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (a_std * b_std))


def correlation_ratio(categories: np.ndarray, values: np.ndarray) -> float:
    """Correlation ratio (eta) between a categorical and a numerical variable.

    ``eta^2`` is the fraction of the numerical variance explained by the
    category means; ``eta`` lies in [0, 1].
    """
    cats = np.asarray(categories).astype(str)
    y = np.asarray(values, dtype=np.float64)
    if cats.shape[0] != y.shape[0]:
        raise ValueError("inputs must have the same length")
    if y.size == 0:
        return 0.0
    total_var = y.var()
    if total_var == 0:
        return 0.0
    uniques, inverse = np.unique(cats, return_inverse=True)
    counts = np.bincount(inverse).astype(np.float64)
    means = np.bincount(inverse, weights=y) / counts
    between = np.sum(counts * (means - y.mean()) ** 2) / y.size
    eta_sq = between / total_var
    return float(np.sqrt(np.clip(eta_sq, 0.0, 1.0)))


def _entropy(probabilities: np.ndarray) -> float:
    p = probabilities[probabilities > 0]
    return float(-(p * np.log(p)).sum())


def theils_u(x: np.ndarray, y: np.ndarray) -> float:
    """Theil's uncertainty coefficient U(x|y): how much knowing ``y`` tells about ``x``.

    Asymmetric, in [0, 1]; 0 means independence, 1 means ``y`` fully determines ``x``.
    """
    a = np.asarray(x).astype(str)
    b = np.asarray(y).astype(str)
    if a.shape != b.shape:
        raise ValueError("inputs must have the same shape")
    if a.size == 0:
        return 0.0
    x_cats, x_codes = np.unique(a, return_inverse=True)
    y_cats, y_codes = np.unique(b, return_inverse=True)
    n = a.size
    px = np.bincount(x_codes).astype(np.float64) / n
    h_x = _entropy(px)
    if h_x == 0:
        return 1.0
    # Joint distribution via a 2-D contingency table.
    joint = np.zeros((x_cats.size, y_cats.size), dtype=np.float64)
    np.add.at(joint, (x_codes, y_codes), 1.0)
    joint /= n
    py = joint.sum(axis=0)
    # Conditional entropy H(X|Y) = -sum_xy p(x,y) log(p(x,y)/p(y)).
    mask = joint > 0
    cond = joint[mask] * np.log(joint[mask] / np.broadcast_to(py, joint.shape)[mask])
    h_x_given_y = float(-cond.sum())
    return float(np.clip((h_x - h_x_given_y) / h_x, 0.0, 1.0))


def association_matrix(
    table: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[np.ndarray, Sequence[str]]:
    """Square association matrix over ``columns`` (defaults to all).

    Entry ``(i, j)`` measures how much column ``j`` explains column ``i``:
    absolute Pearson for numerical pairs, correlation ratio for mixed pairs
    and Theil's U (rows conditioned on columns) for categorical pairs.  The
    diagonal is 1.
    """
    cols = list(columns) if columns is not None else table.columns
    k = len(cols)
    matrix = np.eye(k)
    kinds = {c: table.schema.kind_of(c) for c in cols}
    for i, ci in enumerate(cols):
        for j, cj in enumerate(cols):
            if i == j:
                continue
            ki, kj = kinds[ci], kinds[cj]
            if ki is ColumnKind.NUMERICAL and kj is ColumnKind.NUMERICAL:
                value = abs(pearson_correlation(table[ci], table[cj]))
            elif ki is ColumnKind.CATEGORICAL and kj is ColumnKind.CATEGORICAL:
                value = theils_u(table[ci], table[cj])
            elif ki is ColumnKind.CATEGORICAL:
                value = correlation_ratio(table[ci], table[cj])
            else:
                value = correlation_ratio(table[cj], table[ci])
            matrix[i, j] = value
    return matrix, cols


def diff_corr(real: Table, synthetic: Table, columns: Optional[Sequence[str]] = None) -> float:
    """Mean element-wise L2 distance between real and synthetic association matrices."""
    cols = list(columns) if columns is not None else real.columns
    real_matrix, _ = association_matrix(real, cols)
    synth_matrix, _ = association_matrix(synthetic, cols)
    diff = real_matrix - synth_matrix
    return float(np.sqrt(np.mean(diff ** 2)))


def association_difference(
    real: Table, synthetic: Table, columns: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """Full Fig.-5 payload: both matrices, their difference, and the score."""
    cols = list(columns) if columns is not None else real.columns
    real_matrix, _ = association_matrix(real, cols)
    synth_matrix, _ = association_matrix(synthetic, cols)
    return {
        "columns": cols,
        "real": real_matrix,
        "synthetic": synth_matrix,
        "difference": synth_matrix - real_matrix,
        "diff_corr": float(np.sqrt(np.mean((real_matrix - synth_matrix) ** 2))),
    }
