"""Pairwise association metrics and the diff-CORR score (paper Fig. 5, Table I).

Three association measures are combined into one square matrix over all
columns, exactly as the paper describes:

* numerical–numerical: absolute Pearson correlation,
* categorical–numerical: correlation ratio (eta),
* categorical–categorical: Theil's U (an asymmetric, entropy-based measure).

The diff-CORR score is the mean element-wise L2 distance between the real and
synthetic association matrices.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.tabular.schema import ColumnKind
from repro.tabular.table import Table


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (0.0 when either side is constant)."""
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("inputs must have the same shape")
    if a.size < 2:
        return 0.0
    a_std = a.std()
    b_std = b.std()
    if a_std == 0 or b_std == 0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (a_std * b_std))


def correlation_ratio(categories: np.ndarray, values: np.ndarray) -> float:
    """Correlation ratio (eta) between a categorical and a numerical variable.

    ``eta^2`` is the fraction of the numerical variance explained by the
    category means; ``eta`` lies in [0, 1].
    """
    cats = np.asarray(categories).astype(str)
    y = np.asarray(values, dtype=np.float64)
    if cats.shape[0] != y.shape[0]:
        raise ValueError("inputs must have the same length")
    if y.size == 0:
        return 0.0
    total_var = y.var()
    if total_var == 0:
        return 0.0
    uniques, inverse = np.unique(cats, return_inverse=True)
    counts = np.bincount(inverse).astype(np.float64)
    means = np.bincount(inverse, weights=y) / counts
    between = np.sum(counts * (means - y.mean()) ** 2) / y.size
    eta_sq = between / total_var
    return float(np.sqrt(np.clip(eta_sq, 0.0, 1.0)))


def _entropy(probabilities: np.ndarray) -> float:
    p = probabilities[probabilities > 0]
    return float(-(p * np.log(p)).sum())


def theils_u(x: np.ndarray, y: np.ndarray) -> float:
    """Theil's uncertainty coefficient U(x|y): how much knowing ``y`` tells about ``x``.

    Asymmetric, in [0, 1]; 0 means independence, 1 means ``y`` fully determines ``x``.
    """
    a = np.asarray(x).astype(str)
    b = np.asarray(y).astype(str)
    if a.shape != b.shape:
        raise ValueError("inputs must have the same shape")
    if a.size == 0:
        return 0.0
    x_cats, x_codes = np.unique(a, return_inverse=True)
    y_cats, y_codes = np.unique(b, return_inverse=True)
    n = a.size
    px = np.bincount(x_codes).astype(np.float64) / n
    h_x = _entropy(px)
    if h_x == 0:
        return 1.0
    # Joint distribution via a 2-D contingency table.
    joint = np.zeros((x_cats.size, y_cats.size), dtype=np.float64)
    np.add.at(joint, (x_codes, y_codes), 1.0)
    joint /= n
    py = joint.sum(axis=0)
    # Conditional entropy H(X|Y) = -sum_xy p(x,y) log(p(x,y)/p(y)).
    mask = joint > 0
    cond = joint[mask] * np.log(joint[mask] / np.broadcast_to(py, joint.shape)[mask])
    h_x_given_y = float(-cond.sum())
    return float(np.clip((h_x - h_x_given_y) / h_x, 0.0, 1.0))


def _theils_u_from_joint(joint: np.ndarray, h_x: float) -> float:
    """Theil's U(x|y) from a normalised joint table with x on the rows."""
    if h_x == 0:
        return 1.0
    py = joint.sum(axis=0)
    mask = joint > 0
    cond = joint[mask] * np.log(joint[mask] / np.broadcast_to(py, joint.shape)[mask])
    h_x_given_y = float(-cond.sum())
    return float(np.clip((h_x - h_x_given_y) / h_x, 0.0, 1.0))


def association_matrix(
    table: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[np.ndarray, Sequence[str]]:
    """Square association matrix over ``columns`` (defaults to all).

    Entry ``(i, j)`` measures how much column ``j`` explains column ``i``:
    absolute Pearson for numerical pairs, correlation ratio for mixed pairs
    and Theil's U (rows conditioned on columns) for categorical pairs.  The
    diagonal is 1.

    Sufficient statistics are shared across pairs: every categorical column is
    integer-coded once, every numerical column is centred once, both Theil
    directions of a categorical pair are read off one contingency table, and
    the mixed-pair correlation ratio (a symmetric measure) fills both
    entries.  Values match the per-pair functions within ~1e-12 (the numerical
    block uses a BLAS Gram product, the transposed Theil direction sums the
    same terms in a different order).
    """
    cols = list(columns) if columns is not None else table.columns
    k = len(cols)
    matrix = np.eye(k)
    n = len(table)
    kinds = [table.schema.kind_of(c) for c in cols]
    num_pos = [i for i, kind in enumerate(kinds) if kind is ColumnKind.NUMERICAL]
    cat_pos = [i for i, kind in enumerate(kinds) if kind is ColumnKind.CATEGORICAL]

    # -- numerical sufficient statistics: centred columns + std -------------
    if num_pos and n >= 2:
        X = np.column_stack(
            [np.asarray(table[cols[i]], dtype=np.float64) for i in num_pos]
        )
        mu = X.mean(axis=0)
        std = X.std(axis=0)
        centred = X - mu
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = (centred.T @ centred) / n / np.outer(std, std)
        # Constant columns get 0 like pearson_correlation; NaN *data* is left
        # to propagate, also like pearson_correlation (std of NaN data is NaN,
        # never 0, so those entries survive the masks below).
        corr[(std == 0), :] = 0.0
        corr[:, (std == 0)] = 0.0
        np.abs(corr, out=corr)
        for a, i in enumerate(num_pos):
            for b, j in enumerate(num_pos):
                if i != j:
                    matrix[i, j] = corr[a, b]

    # -- categorical sufficient statistics: integer codes + entropies -------
    codes: Dict[int, np.ndarray] = {}
    n_cats: Dict[int, int] = {}
    entropy_of: Dict[int, float] = {}
    for i in cat_pos:
        # Remap the stored dictionary codes to the lexicographic rank of the
        # *present* categories — exactly what ``np.unique(..., return_inverse)``
        # yields on the decoded strings, without materialising any of them.
        column = table.categorical_column(cols[i])
        present = np.unique(column.codes)
        present_cats = column.vocab_array()[present]
        rank = np.empty(len(column.vocab) or 1, dtype=np.intp)
        rank[present[np.argsort(present_cats, kind="stable")]] = np.arange(present.size)
        inverse = rank[column.codes]
        codes[i] = inverse
        n_cats[i] = int(present.size)
        entropy_of[i] = _entropy(np.bincount(inverse).astype(np.float64) / n) if n else 0.0

    # -- categorical-categorical: one contingency table per unordered pair --
    for a, i in enumerate(cat_pos):
        for j in cat_pos[a + 1 :]:
            if n == 0:
                matrix[i, j] = matrix[j, i] = 0.0
                continue
            joint = (
                np.bincount(
                    codes[i] * n_cats[j] + codes[j], minlength=n_cats[i] * n_cats[j]
                )
                .reshape(n_cats[i], n_cats[j])
                .astype(np.float64)
                / n
            )
            matrix[i, j] = _theils_u_from_joint(joint, entropy_of[i])
            matrix[j, i] = _theils_u_from_joint(joint.T, entropy_of[j])

    # -- categorical-numerical: the correlation ratio is symmetric ----------
    for j in num_pos:
        if n == 0:
            continue  # matrix entries stay 0, matching correlation_ratio
        y = np.asarray(table[cols[j]], dtype=np.float64)
        total_var = y.var()
        y_mean = y.mean()
        for i in cat_pos:
            if total_var == 0:
                value = 0.0
            else:
                counts = np.bincount(codes[i], minlength=n_cats[i]).astype(np.float64)
                means = np.bincount(codes[i], weights=y, minlength=n_cats[i]) / counts
                between = np.sum(counts * (means - y_mean) ** 2) / n
                value = float(np.sqrt(np.clip(between / total_var, 0.0, 1.0)))
            matrix[i, j] = matrix[j, i] = value
    return matrix, cols


def diff_corr(real: Table, synthetic: Table, columns: Optional[Sequence[str]] = None) -> float:
    """Mean element-wise L2 distance between real and synthetic association matrices."""
    cols = list(columns) if columns is not None else real.columns
    real_matrix, _ = association_matrix(real, cols)
    synth_matrix, _ = association_matrix(synthetic, cols)
    diff = real_matrix - synth_matrix
    return float(np.sqrt(np.mean(diff ** 2)))


def association_difference(
    real: Table, synthetic: Table, columns: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """Full Fig.-5 payload: both matrices, their difference, and the score."""
    cols = list(columns) if columns is not None else real.columns
    real_matrix, _ = association_matrix(real, cols)
    synth_matrix, _ = association_matrix(synthetic, cols)
    return {
        "columns": cols,
        "real": real_matrix,
        "synthetic": synth_matrix,
        "difference": synth_matrix - real_matrix,
        "diff_corr": float(np.sqrt(np.mean((real_matrix - synth_matrix) ** 2))),
    }
