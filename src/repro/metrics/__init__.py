"""Evaluation metrics for synthetic tabular data.

The paper evaluates surrogate models with five metric families (Table I):

* **WD** — mean Wasserstein distance between each numerical column of the
  real and synthetic tables (computed on min-max normalised values so columns
  with different units are comparable).
* **JSD** — mean Jensen–Shannon divergence between the category frequency
  distributions of each categorical column.
* **diff-CORR** — mean element-wise L2 distance between the pairwise
  association matrices of the real and synthetic tables (Pearson for
  numerical-numerical, correlation ratio for categorical-numerical,
  Theil's U for categorical-categorical pairs).
* **DCR** — mean distance from each synthetic record to its closest real
  training record (privacy; larger is better).
* **diff-MLEF** — machine-learning efficacy gap: MSE of a boosted-tree
  regressor trained on synthetic data minus the MSE of the same regressor
  trained on real data, both evaluated on held-out real data.

:func:`~repro.metrics.report.evaluate_surrogate_data` bundles all of them into
one :class:`~repro.metrics.report.SurrogateScore` (one Table I row).
"""

from repro.metrics.distribution import (
    DriftConfig,
    DriftEvent,
    DriftMonitor,
    categorical_frequencies,
    chi_squared_statistic,
    histogram_series,
    jensen_shannon_divergence,
    ks_statistic,
    mean_jsd,
    mean_wasserstein,
    top_k_frequencies,
    wasserstein_1d,
)
from repro.metrics.correlation import (
    association_matrix,
    correlation_ratio,
    diff_corr,
    pearson_correlation,
    theils_u,
)
from repro.metrics.privacy import (
    TableEmbedder,
    distance_to_closest_record,
    duplicate_fraction,
    embed_tables,
    nearest_record_distances,
)
from repro.metrics.mlef import machine_learning_efficacy, diff_mlef
from repro.metrics.report import SurrogateScore, evaluate_surrogate_data, format_table

__all__ = [
    "wasserstein_1d",
    "mean_wasserstein",
    "jensen_shannon_divergence",
    "mean_jsd",
    "categorical_frequencies",
    "top_k_frequencies",
    "histogram_series",
    "ks_statistic",
    "chi_squared_statistic",
    "DriftConfig",
    "DriftEvent",
    "DriftMonitor",
    "pearson_correlation",
    "correlation_ratio",
    "theils_u",
    "association_matrix",
    "diff_corr",
    "TableEmbedder",
    "embed_tables",
    "nearest_record_distances",
    "distance_to_closest_record",
    "duplicate_fraction",
    "machine_learning_efficacy",
    "diff_mlef",
    "SurrogateScore",
    "evaluate_surrogate_data",
    "format_table",
]
