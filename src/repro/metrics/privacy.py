"""Privacy metrics: Distance to Closest Record (DCR).

For every synthetic row we find the closest row of the *training* data in a
mixed-type metric space (min-max scaled numerical columns, one-hot scaled
categorical columns) and report the mean of those nearest distances.  Small
DCR means synthetic rows hug the training data — good fidelity but a privacy
risk; the paper reads higher DCR as better privacy.

The embedding is fitted once per table pair (:class:`TableEmbedder`) instead
of refitting a fresh encoder per categorical column per call, and the query
side can be embedded and searched in chunks (``chunk_size``) so huge
synthetic tables never materialise one giant one-hot matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.tabular.encoding import OneHotEncoder
from repro.tabular.table import Table
from repro.utils.validation import check_fitted

#: One-hot blocks are scaled so a category mismatch contributes a unit
#: distance, commensurate with a full-range numerical mismatch.
_CATEGORY_SCALE = 1.0 / np.sqrt(2.0)


class TableEmbedder:
    """Embed mixed-type tables in a common numeric space.

    Numerical columns are min-max scaled using the *reference* table's ranges;
    categorical columns become one-hot blocks over the union of categories
    seen across all tables passed to :meth:`fit`.  Fit once, then transform
    any number of (chunks of) tables.
    """

    def __init__(self, columns: Optional[Sequence[str]] = None) -> None:
        self.columns = list(columns) if columns is not None else None
        self.columns_: Optional[List[str]] = None
        self.ranges_: Optional[Dict[str, Tuple[float, float]]] = None
        self.encoders_: Optional[Dict[str, OneHotEncoder]] = None

    def fit(self, reference: Table, *others: Table) -> "TableEmbedder":
        """Learn scaling from ``reference`` and categories from all tables."""
        cols = self.columns if self.columns is not None else reference.columns
        ranges: Dict[str, Tuple[float, float]] = {}
        encoders: Dict[str, OneHotEncoder] = {}
        for name in cols:
            if reference.schema.kind_of(name).value == "numerical":
                ref_col = np.asarray(reference[name], dtype=np.float64)
                lo, hi = float(ref_col.min()), float(ref_col.max())
                span = hi - lo if hi > lo else 1.0
                ranges[name] = (lo, span)
            else:
                encoder = OneHotEncoder()
                encoder.fit(np.concatenate([reference[name]] + [t[name] for t in others]))
                encoders[name] = encoder
        self.columns_ = list(cols)
        self.ranges_ = ranges
        self.encoders_ = encoders
        return self

    @property
    def n_features(self) -> int:
        check_fitted(self, ["columns_"])
        total = len(self.ranges_)
        for encoder in self.encoders_.values():
            total += encoder.n_categories
        return total

    def transform(self, table: Table) -> np.ndarray:
        """Embed ``table`` (or any chunk of it) into the fitted space."""
        check_fitted(self, ["columns_"])
        parts: List[np.ndarray] = []
        for name in self.columns_:
            if name in self.ranges_:
                lo, span = self.ranges_[name]
                col = np.asarray(table[name], dtype=np.float64)
                parts.append(((col - lo) / span)[:, None])
            else:
                parts.append(self.encoders_[name].transform(table[name]) * _CATEGORY_SCALE)
        return np.concatenate(parts, axis=1)


def embed_tables(
    reference: Table, other: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Embed both tables in a common numeric space scaled by the reference table."""
    embedder = TableEmbedder(columns).fit(reference, other)
    return embedder.transform(reference), embedder.transform(other)


def nearest_record_distances(
    training: Table,
    synthetic: Table,
    columns: Optional[Sequence[str]] = None,
    *,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Distance from each synthetic row to its nearest training row.

    ``chunk_size`` bounds how many synthetic rows are embedded and queried at
    once; results are identical to the unchunked computation.
    """
    if len(training) == 0 or len(synthetic) == 0:
        raise ValueError("both tables must be non-empty")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be a positive integer")
    embedder = TableEmbedder(columns).fit(training, synthetic)
    tree = cKDTree(embedder.transform(training))
    n = len(synthetic)
    if chunk_size is None or chunk_size >= n:
        distances, _ = tree.query(embedder.transform(synthetic), k=1)
        return np.asarray(distances, dtype=np.float64)
    distances = np.empty(n, dtype=np.float64)
    for start in range(0, n, chunk_size):
        chunk = synthetic.take(np.arange(start, min(start + chunk_size, n)))
        distances[start : start + len(chunk)], _ = tree.query(embedder.transform(chunk), k=1)
    return distances


def distance_to_closest_record(
    training: Table,
    synthetic: Table,
    columns: Optional[Sequence[str]] = None,
    *,
    normalize_by_dimension: bool = True,
    chunk_size: Optional[int] = None,
) -> float:
    """Mean DCR of the synthetic table with respect to the training table.

    ``normalize_by_dimension`` divides by the square root of the number of
    feature columns so DCR stays comparable across schemas of different width.
    """
    distances = nearest_record_distances(training, synthetic, columns, chunk_size=chunk_size)
    value = float(distances.mean())
    if normalize_by_dimension:
        n_cols = len(columns) if columns is not None else len(training.columns)
        value /= float(np.sqrt(max(n_cols, 1)))
    return float(value)


def duplicate_fraction(
    training: Table,
    synthetic: Table,
    columns: Optional[Sequence[str]] = None,
    *,
    tol: float = 1e-9,
    chunk_size: Optional[int] = None,
) -> float:
    """Fraction of synthetic rows that exactly coincide with a training row.

    A complementary privacy indicator: SMOTE-style interpolators rarely emit
    exact duplicates, while memorising models do.
    """
    distances = nearest_record_distances(training, synthetic, columns, chunk_size=chunk_size)
    return float(np.mean(distances <= tol))
