"""Privacy metrics: Distance to Closest Record (DCR).

For every synthetic row we find the closest row of the *training* data in a
mixed-type metric space (min-max scaled numerical columns, one-hot scaled
categorical columns) and report the mean of those nearest distances.  Small
DCR means synthetic rows hug the training data — good fidelity but a privacy
risk; the paper reads higher DCR as better privacy.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.tabular.encoding import OneHotEncoder
from repro.tabular.table import Table


def _embed(
    reference: Table, other: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Embed both tables in a common numeric space scaled by the reference table.

    Numerical columns are min-max scaled using the reference ranges;
    categorical columns become one-hot blocks scaled by ``1/sqrt(2)`` so a
    category mismatch contributes a unit distance, commensurate with a
    full-range numerical mismatch.
    """
    cols = list(columns) if columns is not None else reference.columns
    ref_parts = []
    other_parts = []
    for name in cols:
        if reference.schema.kind_of(name).value == "numerical":
            ref_col = np.asarray(reference[name], dtype=np.float64)
            other_col = np.asarray(other[name], dtype=np.float64)
            lo, hi = float(ref_col.min()), float(ref_col.max())
            span = hi - lo if hi > lo else 1.0
            ref_parts.append(((ref_col - lo) / span)[:, None])
            other_parts.append(((other_col - lo) / span)[:, None])
        else:
            encoder = OneHotEncoder()
            encoder.fit(np.concatenate([reference[name], other[name]]))
            scale = 1.0 / np.sqrt(2.0)
            ref_parts.append(encoder.transform(reference[name]) * scale)
            other_parts.append(encoder.transform(other[name]) * scale)
    ref_matrix = np.concatenate(ref_parts, axis=1)
    other_matrix = np.concatenate(other_parts, axis=1)
    return ref_matrix, other_matrix


def nearest_record_distances(
    training: Table,
    synthetic: Table,
    columns: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Distance from each synthetic row to its nearest training row."""
    if len(training) == 0 or len(synthetic) == 0:
        raise ValueError("both tables must be non-empty")
    train_matrix, synth_matrix = _embed(training, synthetic, columns)
    tree = cKDTree(train_matrix)
    distances, _ = tree.query(synth_matrix, k=1)
    return np.asarray(distances, dtype=np.float64)


def distance_to_closest_record(
    training: Table,
    synthetic: Table,
    columns: Optional[Sequence[str]] = None,
    *,
    normalize_by_dimension: bool = True,
) -> float:
    """Mean DCR of the synthetic table with respect to the training table.

    ``normalize_by_dimension`` divides by the square root of the number of
    feature columns so DCR stays comparable across schemas of different width.
    """
    distances = nearest_record_distances(training, synthetic, columns)
    value = float(distances.mean())
    if normalize_by_dimension:
        n_cols = len(columns) if columns is not None else len(training.columns)
        value /= float(np.sqrt(max(n_cols, 1)))
    return float(value)


def duplicate_fraction(
    training: Table, synthetic: Table, columns: Optional[Sequence[str]] = None, *, tol: float = 1e-9
) -> float:
    """Fraction of synthetic rows that exactly coincide with a training row.

    A complementary privacy indicator: SMOTE-style interpolators rarely emit
    exact duplicates, while memorising models do.
    """
    distances = nearest_record_distances(training, synthetic, columns)
    return float(np.mean(distances <= tol))
