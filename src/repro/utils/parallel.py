"""Process-parallel map with a sequential fallback.

Heavy experiment sweeps (training several surrogate models, benchmarking many
scheduler policies) are embarrassingly parallel at the task level.  This
helper follows the HPC guidance of keeping each worker's payload a plain
picklable function of plain arguments, and degrades gracefully to a serial
loop when only one worker is requested or when running inside an environment
where forking is undesirable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def available_workers(requested: Optional[int] = None) -> int:
    """Resolve a worker count: ``requested`` capped by the visible CPUs."""
    cpus = os.cpu_count() or 1
    if requested is None or requested <= 0:
        return cpus
    return max(1, min(requested, cpus))


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: Optional[int] = 1,
    chunksize: int = 1,
) -> List[R]:
    """Apply ``func`` to every item, optionally across processes.

    Parameters
    ----------
    func:
        A picklable callable applied to each item.
    items:
        The work list; materialised to preserve ordering of results.
    workers:
        Number of worker processes.  ``1`` (the default) runs serially, which
        is also the safe choice when ``func`` closes over non-picklable state.
    chunksize:
        Forwarded to :meth:`ProcessPoolExecutor.map` to amortise IPC overhead
        for large, cheap work lists.
    """
    work = list(items)
    n_workers = available_workers(workers)
    if n_workers == 1 or len(work) <= 1:
        return [func(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(func, work, chunksize=max(1, chunksize)))
