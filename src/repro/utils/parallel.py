"""Process-parallel plumbing: worker-count resolution, a one-shot parallel
map, and a persistent worker pool for serving.

Heavy experiment sweeps (training several surrogate models, benchmarking many
scheduler policies) are embarrassingly parallel at the task level.  This
module follows the HPC guidance of keeping each worker's payload a plain
picklable function of plain arguments, and degrades gracefully to a serial
loop when only one worker is requested or when running inside an environment
where forking is undesirable.

Worker-count resolution (:func:`available_workers`) is container-aware: it
prefers the scheduling affinity mask (``os.sched_getaffinity``) over
``os.cpu_count`` — inside a cgroup-limited container or a pinned CI runner
the former reports the CPUs the process may actually run on, while the
latter reports every core of the host and would oversubscribe the pool.  The
``REPRO_WORKERS`` environment variable overrides the detected budget
entirely (e.g. CI forces ``REPRO_WORKERS=2`` so the multi-process serving
path is exercised even on single-core runners).

:class:`WorkerPool` is the serving-side companion: a persistent process pool
whose workers run a one-time initializer (deserialize a model snapshot, warm
its packed caches) and then stay hot across requests, so steady-state
dispatch pays per-task IPC only.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable overriding the detected CPU budget.
WORKERS_ENV = "REPRO_WORKERS"


def visible_cpus() -> int:
    """CPUs this process may run on: affinity mask first, ``cpu_count`` fallback.

    ``os.sched_getaffinity`` honours cgroup cpusets and CPU pinning, so a
    containerised run sees its real budget instead of the host's core count;
    platforms without it (macOS) fall back to ``os.cpu_count``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return os.cpu_count() or 1


def available_workers(requested: Optional[int] = None) -> int:
    """Resolve a worker count: ``requested`` capped by the visible CPU budget.

    The budget is :func:`visible_cpus` unless ``REPRO_WORKERS`` is set, in
    which case the override *is* the budget (uncapped — it is an explicit
    operator decision, e.g. forcing the parallel path on a one-core CI
    runner).  ``requested=None`` (or a non-positive request) returns the
    whole budget.
    """
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            budget = max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer worker count, got {env!r}"
            ) from None
    else:
        budget = visible_cpus()
    if requested is None or requested <= 0:
        return budget
    return max(1, min(requested, budget))


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: Optional[int] = 1,
    chunksize: int = 1,
) -> List[R]:
    """Apply ``func`` to every item, optionally across processes.

    Parameters
    ----------
    func:
        A picklable callable applied to each item.
    items:
        The work list; materialised to preserve ordering of results.
    workers:
        Number of worker processes.  ``1`` (the default) runs serially, which
        is also the safe choice when ``func`` closes over non-picklable state.
    chunksize:
        Forwarded to :meth:`ProcessPoolExecutor.map` to amortise IPC overhead
        for large, cheap work lists.
    """
    work = list(items)
    n_workers = available_workers(workers)
    if n_workers == 1 or len(work) <= 1:
        return [func(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(func, work, chunksize=max(1, chunksize)))


def _worker_warmup(hold_seconds: float) -> int:
    """A near-no-op task used to force worker spawn (returns the worker's pid).

    The short hold keeps an already-warm worker busy long enough that the
    next queued warm-up lands on a *different* (possibly still-initializing)
    worker instead of being swallowed by the fast one.
    """
    if hold_seconds > 0:
        time.sleep(hold_seconds)
    return os.getpid()


class WorkerPool:
    """A persistent process pool with one-time per-worker initialization.

    Unlike :func:`parallel_map` (which builds and tears down an executor per
    call), a :class:`WorkerPool` lives for the duration of a serving session:
    ``initializer(*initargs)`` runs once in every worker when it spawns —
    the serving layer uses it to deserialize a model snapshot and warm its
    packed caches — and subsequent :meth:`submit` calls ship only small task
    descriptors.

    ``start()`` (called lazily by the first :meth:`submit`, or eagerly by the
    owner) spawns and initializes every worker up front, so the first real
    request does not pay process startup or model deserialization.  The pool
    is a context manager; :meth:`close` shuts the workers down.
    """

    def __init__(
        self,
        workers: int,
        *,
        initializer: Optional[Callable[..., object]] = None,
        initargs: Tuple = (),
    ) -> None:
        if workers < 1:
            raise ValueError(f"WorkerPool needs at least 1 worker, got {workers}")
        self.workers = int(workers)
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def is_running(self) -> bool:
        return self._executor is not None

    #: Warm-up rounds before :meth:`start` gives up on reaching every worker
    #: (best effort; see below).
    _MAX_WARMUP_ROUNDS = 20

    def start(self) -> "WorkerPool":
        """Spawn and initialize every worker now (idempotent).

        Executors spawn workers on demand, and completed warm-up tasks say
        nothing about *which* worker ran them — a fast worker can swallow
        several while a sibling is still inside its initializer.  So this
        submits warm-up rounds until it has seen every worker's pid report
        back (each round holds finished workers briefly so stragglers get
        the remaining tasks), which means every worker completed its
        initializer; an initializer failure surfaces here, not mid-traffic.
        The pid chase is bounded (:attr:`_MAX_WARMUP_ROUNDS`) — on a
        pathologically slow machine start() degrades to best-effort warm
        rather than hanging.
        """
        if self._executor is not None:
            return self
        context = multiprocessing.get_context()
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=self._initializer,
            initargs=self._initargs,
        )
        seen_pids: set = set()
        for round_index in range(self._MAX_WARMUP_ROUNDS):
            missing = self.workers - len(seen_pids)
            if not missing:
                break
            hold = 0.0 if round_index == 0 else 0.02 * round_index
            warmups = [
                self._executor.submit(_worker_warmup, hold) for _ in range(missing)
            ]
            done, _pending = wait(warmups)
            for future in done:
                seen_pids.add(future.result())  # surfaces initializer failures
        return self

    def submit(self, fn: Callable[..., R], /, *args, **kwargs) -> "Future[R]":
        """Schedule ``fn(*args, **kwargs)`` on a worker; returns its future."""
        if self._executor is None:
            self.start()
        assert self._executor is not None
        return self._executor.submit(fn, *args, **kwargs)

    def close(self) -> None:
        """Shut the workers down (idempotent); pending futures are cancelled."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
