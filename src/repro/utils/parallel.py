"""Process-parallel plumbing: worker-count resolution, a one-shot parallel
map, and a supervised persistent worker pool for serving.

Heavy experiment sweeps (training several surrogate models, benchmarking many
scheduler policies) are embarrassingly parallel at the task level.  This
module follows the HPC guidance of keeping each worker's payload a plain
picklable function of plain arguments, and degrades gracefully to a serial
loop when only one worker is requested or when running inside an environment
where forking is undesirable.

Worker-count resolution (:func:`available_workers`) is container-aware: it
prefers the scheduling affinity mask (``os.sched_getaffinity``) over
``os.cpu_count`` — inside a cgroup-limited container or a pinned CI runner
the former reports the CPUs the process may actually run on, while the
latter reports every core of the host and would oversubscribe the pool.  The
``REPRO_WORKERS`` environment variable overrides the detected budget
entirely (e.g. CI forces ``REPRO_WORKERS=2`` so the multi-process serving
path is exercised even on single-core runners).

:class:`WorkerPool` is the serving-side companion: a persistent process pool
whose workers run a one-time initializer (deserialize a model snapshot, warm
its packed caches) and then stay hot across requests, so steady-state
dispatch pays per-task IPC only.

Supervision
-----------
A plain :class:`~concurrent.futures.ProcessPoolExecutor` is brittle: one
worker dying (OOM kill, segfault, ``os._exit``) marks the whole executor
broken, fails **every** queued future with
:class:`~concurrent.futures.process.BrokenProcessPool`, and leaves the
executor unusable.  :class:`WorkerPool` supervises instead of propagating:

* :meth:`WorkerPool.submit` returns a :class:`SupervisedFuture` that
  remembers its task descriptor ``(fn, args, kwargs)``;
* the first waiter to observe a :class:`BrokenExecutor` triggers
  :meth:`recovery <WorkerPool._recover>`: the dead executor is discarded, a
  fresh one is spawned, the per-worker initializer re-runs (warm-up included,
  exactly like :meth:`WorkerPool.start`), and **every unresolved supervised
  future is resubmitted** — tasks queued behind the crash are re-executed,
  not lost;
* each successful recovery increments :attr:`WorkerPool.restarts`; once
  :attr:`WorkerPool.max_restarts` is exceeded the pool declares itself
  permanently broken (:attr:`WorkerPool.is_broken`) and every pending or
  future operation raises :class:`WorkerPoolBroken`, which callers (the
  sampling service) use to fall back to in-process execution.

Resubmission is only byte-safe when tasks are deterministic pure functions
of their arguments — which the serving layer's chunk tasks are by the
sharding seed contract (chunk ``i`` draws from the ``i``-th ``SeedSequence``
child, so a re-executed chunk regenerates identical bytes).  A task that
deterministically kills its worker on *every* execution is bounded by the
restart budget rather than looping forever.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.utils.logging import get_logger

_LOG = get_logger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable overriding the detected CPU budget.
WORKERS_ENV = "REPRO_WORKERS"


def visible_cpus() -> int:
    """CPUs this process may run on: affinity mask first, ``cpu_count`` fallback.

    ``os.sched_getaffinity`` honours cgroup cpusets and CPU pinning, so a
    containerised run sees its real budget instead of the host's core count;
    platforms without it (macOS) fall back to ``os.cpu_count``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return os.cpu_count() or 1


def available_workers(requested: Optional[int] = None) -> int:
    """Resolve a worker count: ``requested`` capped by the visible CPU budget.

    The budget is :func:`visible_cpus` unless ``REPRO_WORKERS`` is set, in
    which case the override *is* the budget (uncapped — it is an explicit
    operator decision, e.g. forcing the parallel path on a one-core CI
    runner).  ``requested=None`` (or a non-positive request) returns the
    whole budget.
    """
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            budget = max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer worker count, got {env!r}"
            ) from None
    else:
        budget = visible_cpus()
    if requested is None or requested <= 0:
        return budget
    return max(1, min(requested, budget))


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: Optional[int] = 1,
    chunksize: int = 1,
) -> List[R]:
    """Apply ``func`` to every item, optionally across processes.

    Parameters
    ----------
    func:
        A picklable callable applied to each item.
    items:
        The work list; materialised to preserve ordering of results.
    workers:
        Number of worker processes.  ``1`` (the default) runs serially, which
        is also the safe choice when ``func`` closes over non-picklable state.
    chunksize:
        Forwarded to :meth:`ProcessPoolExecutor.map` to amortise IPC overhead
        for large, cheap work lists.
    """
    work = list(items)
    n_workers = available_workers(workers)
    if n_workers == 1 or len(work) <= 1:
        return [func(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(func, work, chunksize=max(1, chunksize)))


def _worker_warmup(hold_seconds: float) -> int:
    """A near-no-op task used to force worker spawn (returns the worker's pid).

    The short hold keeps an already-warm worker busy long enough that the
    next queued warm-up lands on a *different* (possibly still-initializing)
    worker instead of being swallowed by the fast one.
    """
    if hold_seconds > 0:
        time.sleep(hold_seconds)
    return os.getpid()


class WorkerPoolBroken(RuntimeError):
    """The pool exhausted its restart budget (or could not rebuild).

    Raised by every pending :class:`SupervisedFuture` and by any further
    :meth:`WorkerPool.submit` once supervision gives up.  Catching it is the
    signal to degrade to in-process execution (the sampling service does).
    """


class SupervisedFuture:
    """A future whose task survives worker-pool breakage.

    Wraps the executor future of one submitted task together with the task
    descriptor itself, so the owning :class:`WorkerPool` can resubmit the
    task onto a rebuilt executor after a worker crash.  The inner future is
    rebound during recovery; waiters blocked in :meth:`result` observe the
    old future fail with :class:`BrokenExecutor` (the executor fails all its
    futures when it breaks), drive the pool's recovery, and transparently
    continue waiting on the resubmitted attempt.

    Only the subset of the :class:`concurrent.futures.Future` interface the
    serving layer needs is provided: :meth:`result`, :meth:`exception`,
    :meth:`done`, :meth:`cancel`, :meth:`cancelled`.
    """

    __slots__ = ("_pool", "_task", "_lock", "_inner", "_generation",
                 "_cancelled", "resubmissions")

    def __init__(self, pool: "WorkerPool", fn: Callable[..., R], args, kwargs) -> None:
        self._pool = pool
        self._task = (fn, args, kwargs)
        self._lock = threading.Lock()
        self._inner: Optional[Future] = None
        self._generation = -1
        self._cancelled = False
        #: Times this task was resubmitted after a pool breakage.
        self.resubmissions = 0

    # -- pool-side plumbing ------------------------------------------------------
    def _bind(self, inner: Future, generation: int) -> None:
        with self._lock:
            self._inner = inner
            self._generation = generation

    def _snapshot(self) -> Tuple[Future, int]:
        with self._lock:
            assert self._inner is not None
            return self._inner, self._generation

    def _is_resolved(self) -> bool:
        """True when the inner future carries a real outcome (not breakage)."""
        inner, _ = self._snapshot()
        if self._cancelled or inner.cancelled():
            return True
        if not inner.done():
            return False
        return not isinstance(inner.exception(), BrokenExecutor)

    # -- Future-like API ---------------------------------------------------------
    def cancel(self) -> bool:
        """Give the task up: it will not be resubmitted by recovery.

        Returns whether the *current* attempt could still be cancelled; a
        running attempt keeps running but its result is abandoned either way.
        """
        with self._lock:
            self._cancelled = True
            inner = self._inner
        self._pool._deregister(self)
        return inner.cancel() if inner is not None else True

    def cancelled(self) -> bool:
        return self._cancelled

    def done(self) -> bool:
        """True once the task has a real outcome (result or task exception).

        Observing a broken attempt triggers pool recovery as a side effect —
        after a successful rebuild the task is pending again and ``done()``
        is ``False``; after a terminal failure it is ``True`` and
        :meth:`result` raises :class:`WorkerPoolBroken`.
        """
        inner, generation = self._snapshot()
        if not inner.done():
            return False
        if inner.cancelled():
            return True
        if isinstance(inner.exception(), BrokenExecutor) and not self._cancelled:
            try:
                self._pool._recover(generation)
            except Exception:
                return True  # terminal: result()/exception() surface the error
            inner2, _ = self._snapshot()
            return inner2.done()
        return True

    def result(self, timeout: Optional[float] = None) -> R:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            inner, generation = self._snapshot()
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0 and not inner.done():
                raise FuturesTimeoutError(f"task not done within {timeout}s")
            try:
                value = inner.result(remaining)
            except FuturesTimeoutError:
                raise
            except BrokenExecutor:
                if self._cancelled:
                    raise
                # Drive recovery; raises WorkerPoolBroken when supervision
                # gives up, otherwise this future was rebound — keep waiting.
                self._pool._recover(generation)
                continue
            except BaseException:
                self._pool._deregister(self)
                raise
            self._pool._deregister(self)
            return value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        try:
            self.result(timeout)
        except FuturesTimeoutError:
            raise
        except BaseException as exc:  # noqa: BLE001 - mirror Future.exception
            return exc
        return None


class WorkerPool:
    """A supervised persistent process pool with one-time per-worker init.

    Unlike :func:`parallel_map` (which builds and tears down an executor per
    call), a :class:`WorkerPool` lives for the duration of a serving session:
    ``initializer(*initargs)`` runs once in every worker when it spawns —
    the serving layer uses it to deserialize a model snapshot and warm its
    packed caches — and subsequent :meth:`submit` calls ship only small task
    descriptors.

    ``start()`` (called lazily by the first :meth:`submit`, or eagerly by the
    owner) spawns and initializes every worker up front, so the first real
    request does not pay process startup or model deserialization.  The pool
    is a context manager; :meth:`close` shuts the workers down.

    Worker death is supervised (see the module docstring): the executor is
    rebuilt, the initializer re-runs, unresolved tasks are resubmitted, and
    :attr:`restarts` counts the rebuilds.  ``max_restarts`` bounds the
    budget; beyond it the pool raises :class:`WorkerPoolBroken` everywhere.
    """

    def __init__(
        self,
        workers: int,
        *,
        initializer: Optional[Callable[..., object]] = None,
        initargs: Tuple = (),
        max_restarts: int = 5,
    ) -> None:
        if workers < 1:
            raise ValueError(f"WorkerPool needs at least 1 worker, got {workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be non-negative, got {max_restarts}")
        self.workers = int(workers)
        self.max_restarts = int(max_restarts)
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.RLock()
        self._generation = 0
        self._restarts = 0
        self._broken: Optional[BaseException] = None
        self._registry: set = set()

    @property
    def is_running(self) -> bool:
        return self._executor is not None

    @property
    def restarts(self) -> int:
        """Completed supervision rebuilds since the pool (re)started."""
        return self._restarts

    @property
    def pending_tasks(self) -> int:
        """Supervised tasks submitted but not yet consumed (queue + in flight).

        The observability layer reports this as the pool-queue gauge; it is
        an instantaneous count, safe to read from any thread.
        """
        with self._lock:
            return len(self._registry)

    @property
    def is_broken(self) -> bool:
        """True once supervision gave up; :meth:`close` resets the state."""
        return self._broken is not None

    #: Warm-up rounds before :meth:`start` gives up on reaching every worker
    #: (best effort; see below).
    _MAX_WARMUP_ROUNDS = 20

    def start(self) -> "WorkerPool":
        """Spawn and initialize every worker now (idempotent).

        Executors spawn workers on demand, and completed warm-up tasks say
        nothing about *which* worker ran them — a fast worker can swallow
        several while a sibling is still inside its initializer.  So this
        submits warm-up rounds until it has seen every worker's pid report
        back (each round holds finished workers briefly so stragglers get
        the remaining tasks), which means every worker completed its
        initializer; an initializer failure surfaces here, not mid-traffic.
        The pid chase is bounded (:attr:`_MAX_WARMUP_ROUNDS`) — on a
        pathologically slow machine start() degrades to best-effort warm
        rather than hanging.
        """
        with self._lock:
            if self._broken is not None:
                raise WorkerPoolBroken(
                    "worker pool is permanently broken; close() it before reuse"
                ) from self._broken
            if self._executor is None:
                self._spawn()
        return self

    def _spawn(self) -> None:
        """Build a fresh executor and warm every worker (caller holds the lock)."""
        context = multiprocessing.get_context()
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=self._initializer,
            initargs=self._initargs,
        )
        seen_pids: set = set()
        for round_index in range(self._MAX_WARMUP_ROUNDS):
            missing = self.workers - len(seen_pids)
            if not missing:
                break
            hold = 0.0 if round_index == 0 else 0.02 * round_index
            warmups = [
                self._executor.submit(_worker_warmup, hold) for _ in range(missing)
            ]
            done, _pending = wait(warmups)
            for future in done:
                seen_pids.add(future.result())  # surfaces initializer failures

    def submit(self, fn: Callable[..., R], /, *args, **kwargs) -> SupervisedFuture:
        """Schedule ``fn(*args, **kwargs)``; returns its supervised future.

        ``fn`` must be a deterministic picklable function of its arguments:
        supervision re-executes it after a worker crash, and only a pure
        task makes the re-execution indistinguishable from the first run.
        """
        supervised = SupervisedFuture(self, fn, args, kwargs)
        with self._lock:
            if self._executor is None:
                self.start()
            while True:
                assert self._executor is not None
                try:
                    inner = self._executor.submit(fn, *args, **kwargs)
                except BrokenExecutor:
                    self._recover(self._generation)  # raises when terminal
                    continue
                break
            supervised._bind(inner, self._generation)
            self._registry.add(supervised)
        return supervised

    def _recover(self, broken_generation: int) -> None:
        """Rebuild after a breakage observed on ``broken_generation``.

        Any number of waiter threads may race here; only the first to hold
        the lock for the still-current generation performs the rebuild (and
        the resubmission of every unresolved supervised task).  Late
        arrivals see an advanced generation and return immediately — their
        futures were already rebound.  Raises :class:`WorkerPoolBroken`
        when the restart budget is exhausted or the rebuild itself fails.
        """
        with self._lock:
            if self._broken is not None:
                raise WorkerPoolBroken(
                    f"worker pool gave up after {self._restarts} restart(s)"
                ) from self._broken
            if broken_generation != self._generation:
                return  # another waiter already recovered this breakage
            old, self._executor = self._executor, None
            self._generation += 1
            if old is not None:
                old.shutdown(wait=False, cancel_futures=True)
            if self._restarts >= self.max_restarts:
                self._broken = WorkerPoolBroken(
                    f"worker pool broke again after {self._restarts} restart(s) "
                    f"(max_restarts={self.max_restarts})"
                )
                self._registry.clear()
                raise self._broken
            try:
                self._spawn()
            except BaseException as exc:
                self._broken = exc
                self._registry.clear()
                raise WorkerPoolBroken(
                    "worker pool could not be rebuilt after a crash"
                ) from exc
            self._restarts += 1
            _LOG.warning(
                "worker pool rebuilt after a crash (restart %d/%d, generation %d); "
                "resubmitting %d unresolved task(s)",
                self._restarts, self.max_restarts, self._generation, len(self._registry),
            )
            # Resubmit everything the crash invalidated; tasks that already
            # resolved (real result or real task exception) keep their
            # outcome, and consumed tasks were deregistered long ago.
            for supervised in list(self._registry):
                if supervised._is_resolved():
                    self._registry.discard(supervised)
                    continue
                fn, args, kwargs = supervised._task
                assert self._executor is not None
                inner = self._executor.submit(fn, *args, **kwargs)
                supervised._bind(inner, self._generation)
                supervised.resubmissions += 1

    def _deregister(self, supervised: SupervisedFuture) -> None:
        with self._lock:
            self._registry.discard(supervised)

    def close(self) -> None:
        """Shut the workers down (idempotent); pending futures are cancelled.

        Also clears the broken state and the restart budget: an explicit
        close + start is a deliberate fresh pool, not a supervised rebuild.
        """
        with self._lock:
            executor, self._executor = self._executor, None
            self._generation += 1
            self._restarts = 0
            self._broken = None
            self._registry.clear()
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
