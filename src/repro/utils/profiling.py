"""Lightweight wall-clock profiling: a ``timer`` context manager and a
benchmark registry used by the perf-regression harness.

The registry groups measurements by ``(kernel, variant, size)`` so the
benchmark scripts can record both a seed (baseline) implementation and an
optimized implementation of the same kernel and derive speedups.  Results
round-trip through JSON (``benchmarks/BENCH_hotpaths.json``) so slowdowns can
be detected across commits by ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class TimerResult:
    """Mutable holder filled in when a :func:`timer` block exits."""

    label: str = ""
    seconds: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimerResult(label={self.label!r}, seconds={self.seconds:.6f})"


@contextmanager
def timer(label: str = "") -> Iterator[TimerResult]:
    """Time a ``with`` block with ``time.perf_counter``.

    >>> with timer("fit") as t:
    ...     _ = sum(range(1000))
    >>> t.seconds > 0
    True
    """
    result = TimerResult(label=label)
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.seconds = time.perf_counter() - start


@dataclass
class BenchmarkRecord:
    """One timed measurement of a kernel variant at a problem size.

    ``extra`` carries optional side metrics that the kernel measures along
    with wall clock (e.g. the serving transport benchmark records the bytes
    each chunk moves over the pool pipe); they round-trip through the JSON
    baseline so gates can assert on them.
    """

    kernel: str
    variant: str  # "seed" or "optimized" (free-form otherwise)
    size: str  # human-readable problem size, e.g. "n=20000"
    seconds: float
    repeats: int = 1
    extra: Optional[Dict[str, float]] = None

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kernel": self.kernel,
            "variant": self.variant,
            "size": self.size,
            "seconds": self.seconds,
            "repeats": self.repeats,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload


class BenchmarkRegistry:
    """Collects :class:`BenchmarkRecord` entries and serialises them to JSON.

    ``measure`` runs a callable ``repeats`` times and stores the best
    wall-clock time (the conventional low-noise estimator for CPU-bound
    kernels).
    """

    def __init__(self) -> None:
        self.records: List[BenchmarkRecord] = []

    def record(
        self,
        kernel: str,
        variant: str,
        size: str,
        seconds: float,
        *,
        repeats: int = 1,
        extra: Optional[Dict[str, float]] = None,
    ) -> BenchmarkRecord:
        rec = BenchmarkRecord(
            kernel, variant, size, float(seconds), repeats=int(repeats), extra=extra
        )
        self.records.append(rec)
        return rec

    def measure(
        self,
        kernel: str,
        variant: str,
        size: str,
        fn: Callable[[], object],
        *,
        repeats: int = 1,
        extra: Optional[Dict[str, float]] = None,
    ) -> BenchmarkRecord:
        """Run ``fn`` ``repeats`` times and record the best wall-clock time."""
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        best = float("inf")
        for _ in range(repeats):
            with timer() as t:
                fn()
            best = min(best, t.seconds)
        return self.record(kernel, variant, size, best, repeats=repeats, extra=extra)

    # -- queries -----------------------------------------------------------
    def seconds_of(self, kernel: str, variant: str, size: str) -> Optional[float]:
        for rec in self.records:
            if (rec.kernel, rec.variant, rec.size) == (kernel, variant, size):
                return rec.seconds
        return None

    def speedups(self, *, baseline: str = "seed", optimized: str = "optimized") -> Dict[str, Dict[str, float]]:
        """``{kernel: {size: baseline_seconds / optimized_seconds}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for rec in self.records:
            if rec.variant != optimized:
                continue
            base = self.seconds_of(rec.kernel, baseline, rec.size)
            if base is None or rec.seconds <= 0:
                continue
            out.setdefault(rec.kernel, {})[rec.size] = base / rec.seconds
        return out

    # -- serialisation -----------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "meta": {
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "records": [rec.as_dict() for rec in self.records],
            "speedups": self.speedups(),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "BenchmarkRegistry":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        registry = cls()
        for rec in payload.get("records", []):
            registry.record(
                rec["kernel"],
                rec["variant"],
                rec["size"],
                rec["seconds"],
                repeats=rec.get("repeats", 1),
                extra=rec.get("extra"),
            )
        return registry
