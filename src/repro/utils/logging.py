"""Logging helpers.

A thin wrapper around :mod:`logging` that gives every module a namespaced
logger under ``repro.*`` with a single, consistently formatted handler.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_configured = False


def _configure_root(level: int) -> None:
    global _configured
    root = logging.getLogger("repro")
    if not _configured:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(level)


def get_logger(name: str, level: Optional[int] = None) -> logging.Logger:
    """Return a logger in the ``repro`` hierarchy.

    Parameters
    ----------
    name:
        Module name; usually ``__name__``.
    level:
        Optional level override for the whole ``repro`` hierarchy.  When
        omitted, the current level is left alone — a plain ``get_logger``
        call must not undo an earlier ``set_verbosity(True)``.
    """
    if level is not None or not _configured:
        _configure_root(level if level is not None else logging.WARNING)
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def set_verbosity(verbose: bool) -> None:
    """Switch the library between INFO (verbose) and WARNING logging."""
    _configure_root(logging.INFO if verbose else logging.WARNING)
