"""Shared utilities: seeded RNG handling, validation, logging, parallel map.

These helpers are intentionally tiny and dependency-free; they exist so the
rest of the library never reaches for global random state or ad-hoc argument
checking.
"""

from repro.utils.rng import as_rng, spawn_rngs, derive_seed
from repro.utils.validation import (
    check_array,
    check_fitted,
    check_positive,
    check_probability,
    check_in_options,
)
from repro.utils.logging import get_logger
from repro.utils.parallel import parallel_map
from repro.utils.profiling import BenchmarkRegistry, timer

__all__ = [
    "BenchmarkRegistry",
    "timer",
    "as_rng",
    "spawn_rngs",
    "derive_seed",
    "check_array",
    "check_fitted",
    "check_positive",
    "check_probability",
    "check_in_options",
    "get_logger",
    "parallel_map",
]
