"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` and converts it with
:func:`as_rng`.  Components that need several independent streams (e.g. one
per worker process, or one per diffusion chain) use :func:`spawn_rngs`, which
is deterministic given the parent.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so callers can thread a
    single stream through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {type(seed).__name__!r} as a random seed")


def spawn_seed_sequences(seed: SeedLike, n: int) -> List[np.random.SeedSequence]:
    """The ``n`` :class:`~numpy.random.SeedSequence` children of ``seed``.

    The picklable form of :func:`spawn_rngs`: each child seeds exactly the
    generator ``spawn_rngs`` would return at the same index, so work shipped
    to another process (one chunk of a sharded sampling request) draws the
    same stream there as it would in-process.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Generators carry their own bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return list(seq.spawn(n))


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    The children are derived through :class:`numpy.random.SeedSequence`
    spawning, so the same ``(seed, n)`` pair always produces the same streams.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, n)]


def derive_seed(base: Optional[int], *names: Iterable[str]) -> int:
    """Derive a deterministic 32-bit seed from a base seed and string labels.

    Used to give each named sub-component (e.g. ``"encoder"``, ``"decoder"``)
    its own reproducible stream without the streams being correlated.
    """
    h = hashlib.sha256()
    h.update(str(base).encode("utf-8"))
    for name in names:
        h.update(b"\x00")
        h.update(str(name).encode("utf-8"))
    return int.from_bytes(h.digest()[:4], "little")
