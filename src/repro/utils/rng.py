"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` and converts it with
:func:`as_rng`.  Components that need several independent streams (e.g. one
per worker process, or one per diffusion chain) use :func:`spawn_rngs`, which
is deterministic given the parent.
"""

from __future__ import annotations

import hashlib
import sys
from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so callers can thread a
    single stream through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {type(seed).__name__!r} as a random seed")


def spawn_seed_sequences(seed: SeedLike, n: int) -> List[np.random.SeedSequence]:
    """The ``n`` :class:`~numpy.random.SeedSequence` children of ``seed``.

    The picklable form of :func:`spawn_rngs`: each child seeds exactly the
    generator ``spawn_rngs`` would return at the same index, so work shipped
    to another process (one chunk of a sharded sampling request) draws the
    same stream there as it would in-process.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Generators carry their own bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return list(seq.spawn(n))


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    The children are derived through :class:`numpy.random.SeedSequence`
    spawning, so the same ``(seed, n)`` pair always produces the same streams.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, n)]


#: ``numpy`` converts a raw 64-bit draw to a double as ``(u >> 11) * 2**-53``.
_U53_INV = 1.0 / 9007199254740992.0
_SHIFT11 = np.uint64(11)
_SHIFT32 = np.uint64(32)
_MASK32 = np.uint64(0xFFFFFFFF)
_BOUND32 = np.uint64(0x100000000)
_MOD128 = 1 << 128
_LITTLE = sys.byteorder == "little"

#: Bit generators whose ``random()`` path is one raw 64-bit draw per double
#: and whose 32-bit path is the buffered native ``next_uint32`` (spare half
#: carried in ``has_uint32``/``uinteger`` state) — the layout
#: :func:`fused_column_draws` emulates.
_FUSED_BITGENS = ("PCG64", "PCG64DXSM")


def fused_column_draws(
    rng: np.random.Generator,
    plans: List[tuple],
    *,
    prescreened: bool = False,
) -> Optional[List[tuple]]:
    """Stream-pinned fusion of per-column uniform + bounded-integer draws.

    ``plans`` is a sequence of ``(count, cdf, highs)`` entries.  For each
    entry, in order, the historical code performs two generator calls::

        cats  = cdf.searchsorted(rng.random(count), side="right")
        draws = rng.integers(0, highs[cats])

    This helper produces byte-identical ``(cats, draws)`` results — and
    leaves ``rng`` in a byte-identical end state, spare half-word
    included — from **one** raw block draw plus one stream advance, by
    replaying numpy's own consumption rules over the block:

    * a double is ``(u64 >> 11) * 2**-53`` — one raw draw each;
    * ``integers(0, high)`` with ``high - 1`` in 32-bit range maps one
      *uint32* through Lemire's algorithm; uint32s come from the bit
      generator's buffered ``next_uint32`` (low half first, spare high half
      carried across calls in generator state);
    * a Lemire rejection (probability ``< high / 2**32`` per draw) would
      consume an extra word, shifting every later position — the helper
      detects the case exactly and returns ``None`` with ``rng`` untouched.

    The helper only fuses when every pool can yield a bounded draw
    (``highs > 1`` everywhere): then each element consumes exactly one
    half-word and the stream layout follows from the counts alone.  A
    ``high == 1`` element consumes *nothing* in numpy, which would make the
    layout data-dependent per element — those plans, 64-bit bounds, and
    non-PCG64 generators all return ``None`` up front (generator untouched)
    and the caller falls back to the legacy per-column calls.

    ``prescreened=True`` skips the per-call ``1 < highs < 2**32`` screen;
    callers whose ``highs`` tables are fit-time constants (the condition
    sampler) check once at fit instead of on every batch.  Passing it with
    out-of-range pools voids the byte-identity guarantee.

    ``cdf`` and ``highs`` must already be :class:`numpy.ndarray`; ``cdf``
    must be sorted (the same contract ``searchsorted`` itself has).
    """
    bitgen = rng.bit_generator
    if type(bitgen).__name__ not in _FUSED_BITGENS:
        return None
    # Upper bound on raw 64-bit words: one per uniform plus one per *pair*
    # of bounded draws per column (padding for odd splits and the carry).
    total = 0
    upper = 0
    for count, _cdf, _highs in plans:
        total += count
        upper += count + ((count + 1) >> 1) + 1
    if total == 0:
        return []
    if not prescreened:
        pools = (
            plans[0][2] if len(plans) == 1 else np.concatenate([p[2] for p in plans])
        )
        if int(pools.min()) <= 1 or int(pools.max()) >= 0x100000000:
            return None
    snapshot = bitgen.state
    raw = bitgen.random_raw(upper)
    doubles = (raw >> _SHIFT11).astype(np.float64) * _U53_INV

    # Walk the stream with scalar bookkeeping only — every element consumes
    # one double and one half-word, so each column's slice of the raw block
    # follows from the counts and the carry parity.  The Lemire mapping is
    # deferred and vectorised over all columns at once.
    pos = 0
    avail = 1 if snapshot["has_uint32"] else 0  # pending half-word
    out_cats: List[np.ndarray] = []
    fresh_spans: List[tuple] = []
    for count, cdf, _highs in plans:
        if count == 0:
            out_cats.append(np.empty(0, dtype=np.intp))
            continue
        out_cats.append(cdf.searchsorted(doubles[pos : pos + count], side="right"))
        pos += count
        n_fresh = count - avail
        if n_fresh <= 0:
            avail = 0
            continue
        n_u64 = (n_fresh + 1) >> 1
        fresh_spans.append((pos, n_u64))
        pos += n_u64
        avail = n_fresh & 1

    # ``integers(0, high)`` maps one uint32 word through Lemire with
    # ``rng_excl = (high - 1) + 1 = high``.
    bounds_list = [highs[cats] for cats, (_c, _cdf, highs) in zip(out_cats, plans)]
    rng_excl = (
        bounds_list[0] if len(bounds_list) == 1 else np.concatenate(bounds_list)
    ).astype(np.uint64)
    if len(fresh_spans) == 1:
        start, n_u64 = fresh_spans[0]
        fresh = raw[start : start + n_u64]
    elif fresh_spans:
        fresh = np.concatenate([raw[p : p + n] for p, n in fresh_spans])
    else:  # entry spare covered every bounded draw
        fresh = np.empty(0, dtype=np.uint64)
    # A contiguous little-endian uint64 block *is* its uint32 half-word
    # stream (low half first) — reinterpret instead of splitting.
    if _LITTLE:
        halves = fresh.view(np.uint32)
    else:  # pragma: no cover - big-endian fallback
        halves = np.empty(2 * fresh.size, dtype=np.uint64)
        halves[0::2] = fresh & _MASK32
        halves[1::2] = fresh >> _SHIFT32
    if snapshot["has_uint32"]:
        words = np.empty(total, dtype=np.uint64)
        words[0] = snapshot["uinteger"]
        words[1:] = halves[: total - 1]
    else:
        words = halves[:total].astype(np.uint64)
    m = words * rng_excl
    leftover = m & _MASK32
    maybe = leftover < rng_excl
    if maybe.any():
        excl = rng_excl[maybe]
        if (leftover[maybe] < (_BOUND32 - excl) % excl).any():
            bitgen.state = snapshot
            return None
    draws_all = (m >> _SHIFT32).astype(np.int64)

    draw_parts = []
    offset = 0
    for count, _cdf, _highs in plans:
        draw_parts.append(draws_all[offset : offset + count])
        offset += count

    # Reposition the stream — forward from the over-drawn point by exactly
    # ``pos - upper`` (mod 2**128; PCG64's LCG steps once per 64-bit word) —
    # then restore the half-word buffer numpy would hold.
    bitgen.advance((pos - upper) % _MOD128)
    state = bitgen.state
    state["has_uint32"] = avail
    if fresh_spans:
        # numpy's buffer keeps the high half of the last 32-bit-path draw
        # (pending when ``avail``, stale otherwise — tracked either way so
        # the end state matches the legacy calls bit for bit).
        last_pos, last_n = fresh_spans[-1]
        state["uinteger"] = int(raw[last_pos + last_n - 1] >> _SHIFT32)
    else:
        state["uinteger"] = snapshot["uinteger"]
    bitgen.state = state
    return list(zip(out_cats, draw_parts))


def derive_seed(base: Optional[int], *names: Iterable[str]) -> int:
    """Derive a deterministic 32-bit seed from a base seed and string labels.

    Used to give each named sub-component (e.g. ``"encoder"``, ``"decoder"``)
    its own reproducible stream without the streams being correlated.
    """
    h = hashlib.sha256()
    h.update(str(base).encode("utf-8"))
    for name in names:
        h.update(b"\x00")
        h.update(str(name).encode("utf-8"))
    return int.from_bytes(h.digest()[:4], "little")
