"""Lightweight argument validation helpers.

The goal is uniform, informative error messages across the library rather than
exhaustive type checking.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Tuple

import numpy as np


def check_array(
    x: Any,
    *,
    ndim: Optional[int] = None,
    dtype: Optional[np.dtype] = None,
    allow_empty: bool = True,
    name: str = "array",
) -> np.ndarray:
    """Convert ``x`` to an ndarray and validate its shape/dtype.

    Parameters
    ----------
    x:
        Array-like input.
    ndim:
        Required number of dimensions (``None`` to skip the check).
    dtype:
        Target dtype; the array is cast if necessary.
    allow_empty:
        When ``False``, zero-length arrays raise ``ValueError``.
    name:
        Name used in error messages.
    """
    arr = np.asarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got ndim={arr.ndim}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_fitted(obj: Any, attributes: Sequence[str]) -> None:
    """Raise ``RuntimeError`` unless every attribute in ``attributes`` is set."""
    missing = [a for a in attributes if getattr(obj, a, None) is None]
    if missing:
        raise RuntimeError(
            f"{type(obj).__name__} is not fitted; call fit() before using it "
            f"(missing attributes: {', '.join(missing)})"
        )


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_in_options(value: Any, options: Iterable[Any], name: str) -> Any:
    """Validate that ``value`` is one of ``options``."""
    opts: Tuple[Any, ...] = tuple(options)
    if value not in opts:
        raise ValueError(f"{name} must be one of {opts!r}, got {value!r}")
    return value
