"""Shared dataset construction for all experiments.

Builds the synthetic PanDA trace once (raw records → Fig. 3(b) funnel →
nine-column table → 80/20 split) and hands the pieces to every experiment so
Table I, Fig. 3, Fig. 4 and Fig. 5 all describe the same data, exactly as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.panda.generator import GeneratorConfig, PandaWorkloadGenerator
from repro.panda.pipeline import FilteringPipeline, FilterReport
from repro.tabular.splits import train_test_split
from repro.tabular.table import Table
from repro.utils.rng import derive_seed


@dataclass
class DatasetBundle:
    """Everything downstream experiments need about the dataset."""

    generator: PandaWorkloadGenerator
    raw: Table
    table: Table
    train: Table
    test: Table
    filter_report: FilterReport

    @property
    def n_train(self) -> int:
        return len(self.train)

    @property
    def n_test(self) -> int:
        return len(self.test)


def build_dataset(config: Optional[ExperimentConfig] = None) -> DatasetBundle:
    """Generate, filter and split the synthetic PanDA trace."""
    config = config or ExperimentConfig.ci()
    generator = PandaWorkloadGenerator(
        GeneratorConfig(n_jobs=config.n_raw_jobs, n_days=config.n_days, seed=config.seed)
    )
    raw = generator.generate_raw()
    pipeline = FilteringPipeline(generator.sites)
    table, report = pipeline.run(raw)
    train, test = train_test_split(
        table, config.test_fraction, seed=derive_seed(config.seed, "split")
    )
    return DatasetBundle(
        generator=generator,
        raw=raw,
        table=table,
        train=train,
        test=test,
        filter_report=report,
    )
