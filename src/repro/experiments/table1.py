"""Table I: performance comparison of the surrogate models.

Trains every requested surrogate on the shared training split, samples a
synthetic table of the same size, and computes WD / JSD / diff-CORR / DCR /
diff-MLEF for each — the rows of the paper's Table I.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import DatasetBundle, build_dataset
from repro.metrics.report import SurrogateScore, evaluate_surrogate_data, format_table, rank_models
from repro.models import create_surrogate
from repro.models.base import Surrogate
from repro.models.ctabgan import CTABGANPlusSurrogate
from repro.models.smote import SMOTESurrogate
from repro.models.tabddpm import TabDDPMSurrogate
from repro.models.tvae import TVAESurrogate
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger(__name__)

#: Display names matching the paper's Table I.
_DISPLAY_NAMES = {
    "tvae": "TVAE",
    "ctabgan+": "CTABGAN+",
    "ctabganplus": "CTABGAN+",
    "smote": "SMOTE",
    "tabddpm": "TabDDPM",
    "copula": "GaussianCopula",
    "gaussian_copula": "GaussianCopula",
}


def build_model(name: str, config: ExperimentConfig) -> Surrogate:
    """Instantiate one surrogate with the experiment's training budget."""
    key = name.strip().lower()
    seed = derive_seed(config.seed, "model", key)
    if key == "tvae":
        return TVAESurrogate(config.tvae, seed=seed)
    if key in ("ctabgan+", "ctabganplus"):
        return CTABGANPlusSurrogate(config.ctabgan, seed=seed)
    if key == "smote":
        return SMOTESurrogate(k_neighbors=config.smote_k)
    if key == "tabddpm":
        return TabDDPMSurrogate(config.tabddpm, seed=seed)
    return create_surrogate(key)


def run_table1(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: Optional[DatasetBundle] = None,
    compute_mlef: bool = True,
    verbose: bool = False,
    sampling_mode: str = "exact",
) -> Dict[str, object]:
    """Run the full Table-I experiment.

    Returns a dict with the scores, timings, the rank-per-metric summary and a
    pre-formatted text table.

    ``sampling_mode`` selects the generation path used for the synthetic
    tables: ``"exact"`` (default) reproduces the paper artefacts bit for bit,
    ``"fast"`` exercises the relaxed serving mode — the same distribution
    through the float32 pre-packed serving forwards, so Table-I scores should
    match within sampling noise while the recorded ``sample_seconds`` drop.
    """
    config = config or ExperimentConfig.ci()
    data = dataset or build_dataset(config)
    n_synthetic = config.n_synthetic or data.n_train

    scores: List[SurrogateScore] = []
    timings: Dict[str, Dict[str, float]] = {}
    for name in config.models:
        display = _DISPLAY_NAMES.get(name.lower(), name)
        model = build_model(name, config)
        t0 = time.perf_counter()
        model.fit(data.train)
        fit_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        synthetic = model.sample(
            n_synthetic,
            seed=derive_seed(config.seed, "sample", name),
            sampling_mode=sampling_mode,
        )
        sample_seconds = time.perf_counter() - t0

        score = evaluate_surrogate_data(
            display,
            data.train,
            data.test,
            synthetic,
            mlef_config=config.mlef,
            compute_mlef=compute_mlef,
            seed=derive_seed(config.seed, "mlef", name),
        )
        scores.append(score)
        timings[display] = {"fit_seconds": fit_seconds, "sample_seconds": sample_seconds}
        if verbose:
            logger.info("%s: %s (fit %.1fs)", display, score.as_row(), fit_seconds)

    return {
        "scores": scores,
        "timings": timings,
        "ranks": rank_models(scores),
        "formatted": format_table(scores),
        "n_train": data.n_train,
        "n_test": data.n_test,
        "n_synthetic": n_synthetic,
    }
