"""Command-line entry point: ``repro-experiments <experiment> [options]``.

Regenerates any paper artefact from the terminal, e.g.::

    repro-experiments table1 --preset ci
    repro-experiments fig3 --raw-jobs 20000
    repro-experiments fig2 --models tabddpm
    repro-experiments ablations --which smote_k
    repro-experiments scenario chaos-drift --seed 7 --report report.json

(Equivalently: ``python -m repro.experiments.cli ...``.)
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from repro.experiments.ablations import run_ablations
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import build_dataset
from repro.experiments.figures import (
    fig1_data_volume,
    fig2_scheduler_comparison,
    fig3_dataset_profile,
    fig4_distributions,
    fig5_correlations,
)
from repro.experiments.table1 import run_table1
from repro.utils.logging import set_verbosity

EXPERIMENTS = ("table1", "fig1", "fig2", "fig3", "fig4", "fig5", "ablations", "serve", "scenario")


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    presets = {
        "ci": ExperimentConfig.ci,
        "default": ExperimentConfig.default,
        "paper": ExperimentConfig.paper_scale,
    }
    config = presets[args.preset]()
    if args.raw_jobs is not None:
        config = replace(config, n_raw_jobs=args.raw_jobs)
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    if args.models:
        config = config.with_models(args.models)
    return config


def _print_matrix(matrix: np.ndarray, labels: Sequence[str]) -> None:
    width = max(len(str(label)) for label in labels) + 1
    header = " " * width + " ".join(f"{label[:7]:>8}" for label in labels)
    print(header)
    for label, row in zip(labels, matrix):
        cells = " ".join(f"{v:>8.3f}" for v in row)
        print(f"{label:<{width}}{cells}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiment", choices=EXPERIMENTS, help="which paper artefact to regenerate")
    parser.add_argument(
        "target", nargs="?", default=None,
        help="experiment-specific target (for 'scenario': the catalog name; "
        "omit it to list the catalog)",
    )
    parser.add_argument("--preset", choices=("ci", "default", "paper"), default="ci")
    parser.add_argument("--raw-jobs", type=int, default=None, help="override the number of raw records")
    parser.add_argument("--seed", type=int, default=None, help="override the experiment seed")
    parser.add_argument("--models", nargs="+", default=None, help="subset of models to run")
    parser.add_argument("--no-mlef", action="store_true", help="skip the costly efficacy metric")
    parser.add_argument(
        "--sampling-mode",
        choices=("exact", "fast"),
        default=None,
        help="generation path: 'exact' is bit-reproducible, 'fast' is the "
        "relaxed serving mode (same distribution, float32 fused forwards, "
        "different RNG stream).  Defaults to 'exact' for table1 (paper "
        "artefacts must be reproducible) and 'fast' for serve (the serving "
        "stack's own default)",
    )
    parser.add_argument("--which", nargs="+", default=None, help="ablation sweeps to run")
    request_group = parser.add_argument_group(
        "request",
        "unified RequestSpec knobs (shared by 'serve' and 'scenario'): every "
        "serving entry point — submit(), the HTTP front door and these CLIs — "
        "parses the same fields",
    )
    request_group.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="fairness principal for the requests.  serve: label all demo "
        "requests with this tenant (default: a rotating tenant00..tenant03 "
        "mix).  scenario: combined with --priority, pin that one tenant's "
        "service class",
    )
    request_group.add_argument(
        "--priority", choices=("interactive", "normal", "batch"), default=None,
        help="service class (weighted-fair-queueing weight 4/2/1).  serve: "
        "class of the demo requests (default: a rotating mix).  scenario: "
        "the default class for all traffic, or — with --tenant — one "
        "tenant's class",
    )
    request_group.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request SLO: admission control rejects a request whose "
        "estimated queue wait already exceeds this deadline (HTTP 429)",
    )
    serve_group = parser.add_argument_group("serve", "options for the 'serve' experiment")
    serve_group.add_argument(
        "--http", action="store_true",
        help="front-door smoke: start the asyncio HTTP endpoint, replay the "
        "demo requests over HTTP (fingerprint_only), and verify every "
        "fingerprint against the in-process service — exits non-zero on any "
        "mismatch",
    )
    serve_group.add_argument(
        "--workers", type=int, default=None,
        help="serving worker processes (default: the visible CPU budget / REPRO_WORKERS)",
    )
    serve_group.add_argument(
        "--chunk-size", type=int, default=16_384, help="rows per sharded chunk"
    )
    serve_group.add_argument(
        "--serve-rows", type=int, default=100_000, help="total rows to serve in the demo"
    )
    serve_group.add_argument(
        "--requests", type=int, default=8,
        help="number of concurrent requests the demo splits --serve-rows into",
    )
    serve_group.add_argument(
        "--registry", default=None,
        help="model-registry directory (default: a temporary directory)",
    )
    serve_group.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="deterministic chaos: comma-separated kind@chunk[:value][*times] "
        "faults injected into the workers, e.g. 'kill@1,delay@3:0.25,fail@0*2' "
        "(kinds: kill = crash the worker, delay = sleep value seconds, "
        "fail = raise once per budgeted time).  The run must still produce "
        "byte-identical output; fault counters land in the stats output",
    )
    serve_group.add_argument(
        "--chunk-timeout", type=float, default=None,
        help="per-chunk attempt deadline in seconds (timed-out chunks are resubmitted)",
    )
    serve_group.add_argument(
        "--hedge-multiplier", type=float, default=None,
        help="hedge a chunk once it is this multiple of the median chunk latency",
    )
    obs_group = parser.add_argument_group(
        "observability", "tracing / metrics surfaces (shared by 'serve' and 'scenario')"
    )
    obs_group.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record request-scoped spans and export them after the run: "
        "Chrome trace_event JSON (Perfetto-loadable) for *.json paths, "
        "JSONL otherwise.  Tracing never changes served bytes",
    )
    obs_group.add_argument(
        "--check-metrics", action="store_true",
        help="serve --http only: scrape GET /metrics off the live front "
        "door, validate the Prometheus text format and the required "
        "repro_serve_* series; exits non-zero on any problem",
    )
    scenario_group = parser.add_argument_group(
        "scenario", "options for the 'scenario' experiment (replay + drift/canary loop)"
    )
    scenario_group.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the full scenario report (deterministic core + timing) as JSON",
    )
    scenario_group.add_argument(
        "--ticks", type=int, default=None, help="override the scenario's replay horizon"
    )
    scenario_group.add_argument(
        "--window-rows", type=int, default=None,
        help="override rows per observed drift-monitor window",
    )
    scenario_group.add_argument(
        "--train-rows", type=int, default=None,
        help="override the initial training-corpus size",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    set_verbosity(args.verbose)
    config = _make_config(args)

    if args.experiment == "table1":
        result = run_table1(
            config,
            compute_mlef=not args.no_mlef,
            verbose=args.verbose,
            sampling_mode=args.sampling_mode or "exact",
        )
        if args.json:
            payload = {
                "scores": [s.as_dict() for s in result["scores"]],
                "ranks": result["ranks"],
                "timings": result["timings"],
            }
            print(json.dumps(payload, indent=2))
        else:
            print(result["formatted"])
            print()
            for metric, order in result["ranks"].items():
                print(f"{metric:>10}: {' > '.join(order)}")
        return 0

    if args.experiment == "fig1":
        series = fig1_data_volume(config)
        if args.json:
            print(json.dumps({k: v.tolist() for k, v in series.items()}, indent=2))
        else:
            print("day    cumulative input volume (PB)")
            for day, total in zip(series["day"], series["cumulative_bytes"] / 1e15):
                print(f"{day:6.1f} {total:10.3f}")
        return 0

    if args.experiment == "fig2":
        data = build_dataset(config)
        result = fig2_scheduler_comparison(config, dataset=data)
        rows = result["rows"]
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            keys = list(rows[0].keys())
            print(" ".join(f"{k:>16}" for k in keys))
            for row in rows:
                print(" ".join(f"{str(row[k]):>16}" for k in keys))
        return 0

    if args.experiment == "fig3":
        result = fig3_dataset_profile(config)
        if args.json:
            print(json.dumps(result, indent=2, default=str))
        else:
            print("Fig. 3(a) feature profile")
            for row in result["profile"]:
                print(f"  {row['name']:<18} {row['kind']:<12} unique={row['n_unique']}")
            print()
            print("Fig. 3(b) filtering funnel")
            for row in result["funnel"]:
                print(f"  {row['stage']:<34} {row['rows']:>10,d}")
            print(f"  train/test split: {result['train_rows']:,d} / {result['test_rows']:,d}")
        return 0

    if args.experiment == "fig4":
        result = fig4_distributions(config)
        if args.json:
            print(json.dumps(result, indent=2, default=lambda o: o.tolist() if isinstance(o, np.ndarray) else str(o)))
        else:
            for column, per_model in result["categorical"].items():
                print(f"Fig. 4(b) {column}: top categories (real vs synthetic frequency)")
                for model, rows in per_model.items():
                    cells = ", ".join(f"{r['category']}={r['real']:.2f}/{r['synthetic']:.2f}" for r in rows)
                    print(f"  {model:<14} {cells}")
            print("(numerical histogram series available via --json)")
        return 0

    if args.experiment == "fig5":
        result = fig5_correlations(config)
        if args.json:
            payload = {
                "columns": list(result["columns"]),
                "ground_truth": result["ground_truth"].tolist(),
                "models": {
                    name: {
                        "diff_corr": info["diff_corr"],
                        "difference": info["difference"].tolist(),
                    }
                    for name, info in result["models"].items()
                },
            }
            print(json.dumps(payload, indent=2))
        else:
            print("Fig. 5(a) ground-truth association matrix")
            _print_matrix(result["ground_truth"], list(result["columns"]))
            print()
            for name, info in result["models"].items():
                print(f"Fig. 5(b) {name}: diff-CORR = {info['diff_corr']:.3f}")
        return 0

    if args.experiment == "serve":
        import hashlib
        import tempfile
        import urllib.request

        from repro.experiments.table1 import build_model
        from repro.obs.metrics import REQUIRED_SERVE_SERIES, validate_prometheus_text
        from repro.obs.tracing import Tracer
        from repro.serve import ChunkPolicy, FaultPlan, ModelRegistry, SamplingService
        from repro.serve.api import RequestSpec, table_fingerprint
        from repro.serve.http import FrontDoor
        from repro.utils.rng import derive_seed

        if args.check_metrics and not args.http:
            parser.error("--check-metrics needs --http (it scrapes the live front door)")
        tracer = Tracer() if args.trace_out else None
        sampling_mode = args.sampling_mode or "fast"
        name = config.models[0] if args.models else "tvae"
        data = build_dataset(config)
        model = build_model(name, config).fit(data.train)

        fault_plan = FaultPlan.parse(args.fault_plan) if args.fault_plan else None
        chunk_policy = None
        if args.chunk_timeout is not None or args.hedge_multiplier is not None:
            chunk_policy = ChunkPolicy(
                timeout=args.chunk_timeout, hedge_multiplier=args.hedge_multiplier
            )

        # Every demo request is a RequestSpec — the unified contract.  With no
        # explicit --tenant/--priority the demo rotates through a mixed-tenant,
        # mixed-class population so fairness and WFQ ordering are exercised.
        priorities = ("interactive", "normal", "batch")

        def request_spec(i: int, rows: int) -> RequestSpec:
            return RequestSpec(
                n=rows,
                seed=derive_seed(config.seed, "serve", str(i)),
                sampling_mode=sampling_mode,
                tenant=args.tenant if args.tenant else f"tenant{i % 4:02d}",
                priority=args.priority if args.priority else priorities[i % 3],
                deadline=args.deadline,
            )

        http_report = None
        with tempfile.TemporaryDirectory() as scratch:
            registry = ModelRegistry(args.registry or scratch, warm_chunk_rows=args.chunk_size)
            version = registry.register(name, model)
            n_requests = max(1, args.requests)
            per_request = max(1, args.serve_rows // n_requests)
            with SamplingService(
                registry.get(name),
                workers=args.workers,
                chunk_size=args.chunk_size,
                chunk_policy=chunk_policy,
                fault_plan=fault_plan,
                tracer=tracer,
            ) as service:
                specs = [request_spec(i, per_request) for i in range(n_requests)]
                requests = [service.submit(spec) for spec in specs]
                served = sum(len(r.result()) for r in requests)
                if args.http:
                    # Front-door smoke: the same specs replayed over live
                    # HTTP must fingerprint identically to the in-process
                    # service (the byte contract, end to end).
                    front_door = FrontDoor({name: service})
                    host, port = front_door.start_http()
                    url = f"http://{host}:{port}/sample"
                    digest = hashlib.sha256()
                    mismatches = 0
                    metrics_report = None
                    try:
                        for spec in specs:
                            body = dict(spec.to_dict())
                            body["fingerprint_only"] = True
                            raw = urllib.request.urlopen(
                                urllib.request.Request(
                                    url,
                                    data=json.dumps(body).encode("utf-8"),
                                    method="POST",
                                )
                            ).read()
                            remote = json.loads(raw)["fingerprint"]
                            local = table_fingerprint(service.sample(spec))
                            if remote != local:
                                mismatches += 1
                            digest.update(remote.encode("ascii"))
                        if args.check_metrics:
                            # Scrape the live /metrics page and validate the
                            # exposition format + required series.
                            response = urllib.request.urlopen(
                                f"http://{host}:{port}/metrics"
                            )
                            text = response.read().decode("utf-8")
                            problems = validate_prometheus_text(
                                text, required=REQUIRED_SERVE_SERIES
                            )
                            content_type = response.headers.get("Content-Type", "")
                            if not content_type.startswith("text/plain"):
                                problems.append(
                                    f"unexpected Content-Type {content_type!r}"
                                )
                            metrics_report = {
                                "series_required": list(REQUIRED_SERVE_SERIES),
                                "problems": problems,
                                "ok": not problems,
                            }
                    finally:
                        front_door.stop_http()
                    http_report = {
                        "requests": n_requests,
                        "fingerprint": digest.hexdigest(),
                        "mismatches": mismatches,
                        "verified": mismatches == 0,
                    }
                    if metrics_report is not None:
                        http_report["metrics"] = metrics_report
                stats = service.stats()
                payload = {
                    "model": name,
                    "version": version,
                    "workers": service.workers,
                    "chunk_size": service.chunk_size,
                    "sampling_mode": sampling_mode,
                    "requests": n_requests,
                    "rows_served": served,
                    "rows_per_second": round(stats.rows_per_second, 1),
                    "p50_latency_s": round(stats.p50_latency, 4),
                    "p95_latency_s": round(stats.p95_latency, 4),
                    "fault_plan": args.fault_plan,
                    "pool_restarts": stats.pool_restarts,
                    "chunk_retries": stats.chunk_retries,
                    "chunk_timeouts": stats.chunk_timeouts,
                    "hedges": stats.hedges,
                    "hedge_wins": stats.hedge_wins,
                    "degraded_passes": stats.degraded_passes,
                    # The unified stats tree (same shape as HTTP /stats and
                    # the scenario reports' timing.service block).
                    "stats": stats.to_dict(),
                }
                if http_report is not None:
                    payload["http"] = http_report
            if fault_plan is not None:
                fault_plan.cleanup()
        if tracer is not None:
            exported = tracer.export(args.trace_out)
            payload["trace"] = {"path": args.trace_out, "spans": exported}
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(f"served {served:,d} rows of {name} ({version}) in {n_requests} requests")
            print(
                f"  workers={payload['workers']} chunk_size={payload['chunk_size']} "
                f"mode={sampling_mode}"
            )
            print(
                f"  throughput {payload['rows_per_second']:,.1f} rows/s, "
                f"latency p50 {payload['p50_latency_s']*1e3:.1f} ms / "
                f"p95 {payload['p95_latency_s']*1e3:.1f} ms"
            )
            if args.fault_plan:
                print(
                    f"  faults: plan={args.fault_plan!r} "
                    f"restarts={payload['pool_restarts']} "
                    f"retries={payload['chunk_retries']} "
                    f"timeouts={payload['chunk_timeouts']} "
                    f"hedge_wins={payload['hedge_wins']}/{payload['hedges']} "
                    f"degraded_passes={payload['degraded_passes']}"
                )
            if http_report is not None:
                print(
                    f"  http front door: {http_report['requests']} requests, "
                    f"fingerprint {http_report['fingerprint'][:16]}…, "
                    f"{'verified' if http_report['verified'] else 'MISMATCH'}"
                )
                if "metrics" in http_report:
                    metrics_ok = http_report["metrics"]["ok"]
                    print(
                        f"  /metrics scrape: "
                        f"{'valid' if metrics_ok else 'INVALID'} "
                        f"({len(http_report['metrics']['series_required'])} required series)"
                    )
            if tracer is not None:
                print(
                    f"  trace: {payload['trace']['spans']} spans -> {args.trace_out}"
                )
        if http_report is not None and not http_report["verified"]:
            print(
                f"error: {http_report['mismatches']} HTTP fingerprint(s) diverged "
                "from the in-process service",
                file=sys.stderr,
            )
            return 1
        if http_report is not None and "metrics" in http_report and not http_report["metrics"]["ok"]:
            for problem in http_report["metrics"]["problems"]:
                print(f"error: /metrics: {problem}", file=sys.stderr)
            return 1
        return 0

    if args.experiment == "scenario":
        from repro.scenarios import ScenarioEngine, get_scenario, scenario_names, SCENARIOS

        if args.target is None:
            print("available scenarios (run with: repro-experiments scenario <name>):")
            for scenario_name in scenario_names():
                print(f"  {scenario_name:<20} {SCENARIOS[scenario_name].description}")
            return 0
        spec = get_scenario(args.target)
        overrides = {}
        if args.ticks is not None:
            overrides["ticks"] = args.ticks
            # Keep the chaos schedule valid when the horizon shrinks.
            overrides["fault_arm_ticks"] = tuple(
                t for t in spec.fault_arm_ticks if t < args.ticks
            )
        if args.window_rows is not None:
            overrides["window_rows"] = args.window_rows
        if args.train_rows is not None:
            overrides["train_rows"] = args.train_rows
        # The unified request knobs: --priority sets the default service
        # class (or one tenant's class, with --tenant); --deadline attaches
        # an SLO to every generated request.
        if args.priority is not None:
            if args.tenant is not None:
                overrides["tenant_priorities"] = {
                    **spec.tenant_priorities,
                    args.tenant: args.priority,
                }
            else:
                overrides["default_priority"] = args.priority
        elif args.tenant is not None:
            parser.error("scenario: --tenant needs --priority (the class to pin)")
        if args.deadline is not None:
            overrides["request_deadline"] = args.deadline
        if overrides:
            spec = spec.scaled(**overrides)
        from repro.obs.tracing import Tracer

        tracer = Tracer() if args.trace_out else None
        engine = ScenarioEngine(
            spec,
            seed=args.seed if args.seed is not None else 7,
            workers=args.workers,
            registry_root=args.registry,
            tracer=tracer,
        )
        report = engine.run()
        exported_spans = tracer.export(args.trace_out) if tracer is not None else None
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(report.to_json() + "\n")
        if args.json:
            print(report.to_json())
        else:
            print(report.summary())
            if args.report:
                print(f"  report written to {args.report}")
            if exported_spans is not None:
                print(f"  trace: {exported_spans} spans -> {args.trace_out}")
        return 0

    if args.experiment == "ablations":
        which = tuple(args.which) if args.which else ("diffusion_steps", "smote_k", "numerical_transform")
        result = run_ablations(config, which=which)
        if args.json:
            print(json.dumps(result, indent=2))
        else:
            for sweep, rows in result.items():
                print(f"Ablation: {sweep}")
                for row in rows:
                    print("  " + ", ".join(f"{k}={v if isinstance(v, str) else round(float(v), 3)}" for k, v in row.items()))
        return 0

    parser.error(f"unhandled experiment {args.experiment!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
