"""Experiment harness: one module per paper table/figure.

Every experiment follows the same pattern: build the synthetic PanDA dataset
(the stand-in for the paper's real 150-day trace), run the relevant models or
analyses, and return plain dictionaries / arrays that the benchmark suite and
the CLI print as the rows or series of the corresponding paper artefact.

Experiments
-----------
* :func:`~repro.experiments.table1.run_table1` — Table I (five metrics × four
  models, plus the copula extra baseline).
* :func:`~repro.experiments.figures.fig1_data_volume` — Fig. 1 (cumulative
  data volume over time).
* :func:`~repro.experiments.figures.fig2_scheduler_comparison` — Fig. 2
  setting (brokerage policies on the same workload; real vs synthetic).
* :func:`~repro.experiments.figures.fig3_dataset_profile` — Fig. 3 (feature
  profile and filtering funnel).
* :func:`~repro.experiments.figures.fig4_distributions` — Fig. 4 (per-feature
  distributions, real vs every model).
* :func:`~repro.experiments.figures.fig5_correlations` — Fig. 5 (association
  matrices and their differences).
* :func:`~repro.experiments.ablations.run_ablations` — design-choice sweeps
  (diffusion steps, SMOTE k, numerical transform).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import DatasetBundle, build_dataset
from repro.experiments.table1 import run_table1
from repro.experiments.figures import (
    fig1_data_volume,
    fig2_scheduler_comparison,
    fig3_dataset_profile,
    fig4_distributions,
    fig5_correlations,
)
from repro.experiments.ablations import run_ablations

__all__ = [
    "ExperimentConfig",
    "DatasetBundle",
    "build_dataset",
    "run_table1",
    "fig1_data_volume",
    "fig2_scheduler_comparison",
    "fig3_dataset_profile",
    "fig4_distributions",
    "fig5_correlations",
    "run_ablations",
]
