"""Ablation studies on the design choices called out in DESIGN.md.

Three sweeps, each isolating one knob while everything else stays at the
experiment configuration:

* **TabDDPM diffusion steps** — fidelity (WD/JSD) vs. sampling cost as the
  number of timesteps shrinks;
* **SMOTE neighbourhood size** — the fidelity/privacy (DCR) trade-off as the
  interpolation neighbourhood grows;
* **numerical pre-processing** — Gaussian quantile transform (the paper's
  choice) vs. plain standardisation for TVAE, quantifying why the quantile
  transform is the default.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import DatasetBundle, build_dataset
from repro.metrics.report import evaluate_surrogate_data
from repro.models.smote import SMOTESurrogate
from repro.models.tabddpm import TabDDPMSurrogate
from repro.models.tvae import TVAESurrogate
from repro.tabular.transforms import StandardScaler
from repro.utils.rng import derive_seed


def ablate_diffusion_steps(
    config: ExperimentConfig,
    data: DatasetBundle,
    steps: Sequence[int] = (10, 25, 50, 100),
) -> List[Dict[str, float]]:
    """Sweep the number of TabDDPM timesteps."""
    rows: List[Dict[str, float]] = []
    n_synthetic = config.n_synthetic or data.n_train
    for n_steps in steps:
        ddpm_config = replace(config.tabddpm, n_timesteps=int(n_steps))
        model = TabDDPMSurrogate(ddpm_config, seed=derive_seed(config.seed, "ablate-steps", n_steps))
        model.fit(data.train)
        synthetic = model.sample(n_synthetic, seed=derive_seed(config.seed, "ablate-steps-sample", n_steps))
        score = evaluate_surrogate_data(
            f"TabDDPM@{n_steps}", data.train, data.test, synthetic, compute_mlef=False
        )
        rows.append({"timesteps": float(n_steps), **score.as_row()})
    return rows


def ablate_smote_k(
    config: ExperimentConfig,
    data: DatasetBundle,
    ks: Sequence[int] = (1, 3, 5, 11, 25),
) -> List[Dict[str, float]]:
    """Sweep SMOTE's neighbourhood size: larger k trades privacy for smoothing."""
    rows: List[Dict[str, float]] = []
    n_synthetic = config.n_synthetic or data.n_train
    for k in ks:
        model = SMOTESurrogate(k_neighbors=int(k))
        model.fit(data.train)
        synthetic = model.sample(n_synthetic, seed=derive_seed(config.seed, "ablate-smote", k))
        score = evaluate_surrogate_data(
            f"SMOTE@k={k}", data.train, data.test, synthetic, compute_mlef=False
        )
        rows.append({"k": float(k), **score.as_row()})
    return rows


def ablate_numerical_transform(
    config: ExperimentConfig,
    data: DatasetBundle,
) -> List[Dict[str, float]]:
    """Gaussian quantile transform vs plain standardisation for TVAE."""
    rows: List[Dict[str, float]] = []
    n_synthetic = config.n_synthetic or data.n_train

    quantile_model = TVAESurrogate(config.tvae, seed=derive_seed(config.seed, "ablate-tf-q"))
    quantile_model.fit(data.train)
    synthetic = quantile_model.sample(n_synthetic, seed=derive_seed(config.seed, "ablate-tf-q-s"))
    score = evaluate_surrogate_data("TVAE+quantile", data.train, data.test, synthetic, compute_mlef=False)
    rows.append({"transform": "quantile", **score.as_row()})

    standard_model = TVAESurrogate(
        config.tvae,
        seed=derive_seed(config.seed, "ablate-tf-s"),
        numerical_transform_factory=StandardScaler,
    )
    standard_model.fit(data.train)
    synthetic = standard_model.sample(n_synthetic, seed=derive_seed(config.seed, "ablate-tf-s-s"))
    score = evaluate_surrogate_data("TVAE+standard", data.train, data.test, synthetic, compute_mlef=False)
    rows.append({"transform": "standard", **score.as_row()})
    return rows


def run_ablations(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: Optional[DatasetBundle] = None,
    which: Sequence[str] = ("diffusion_steps", "smote_k", "numerical_transform"),
) -> Dict[str, List[Dict[str, float]]]:
    """Run the requested ablation sweeps."""
    config = config or ExperimentConfig.ci()
    data = dataset or build_dataset(config)
    results: Dict[str, List[Dict[str, float]]] = {}
    if "diffusion_steps" in which:
        results["diffusion_steps"] = ablate_diffusion_steps(config, data)
    if "smote_k" in which:
        results["smote_k"] = ablate_smote_k(config, data)
    if "numerical_transform" in which:
        results["numerical_transform"] = ablate_numerical_transform(config, data)
    return results
