"""Experiment configuration.

One dataclass controls dataset size, model training budgets and which models
run, with three presets:

* ``ExperimentConfig.ci()`` — minutes-scale, used by the test suite and the
  default benchmark run;
* ``ExperimentConfig.default()`` — laptop-scale (tens of minutes), the
  configuration EXPERIMENTS.md reports;
* ``ExperimentConfig.paper_scale()`` — the paper's row counts and training
  budget (hours on CPU); provided for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.models.ctabgan import CTABGANConfig
from repro.models.tabddpm import TabDDPMConfig
from repro.models.tvae import TVAEConfig
from repro.metrics.mlef import MLEFConfig


@dataclass
class ExperimentConfig:
    """Controls the shared dataset and per-model training budgets."""

    #: Raw records generated before filtering (paper: ~2.4 M).
    n_raw_jobs: int = 60_000
    #: Observation window length in days (paper: 150).
    n_days: float = 150.0
    #: Test fraction of the filtered table (paper: 20%).
    test_fraction: float = 0.2
    #: Number of synthetic rows sampled per model (defaults to train size).
    n_synthetic: Optional[int] = None
    #: Models to evaluate, by registry name.
    models: Sequence[str] = ("tvae", "ctabgan+", "smote", "tabddpm")
    #: Global seed.
    seed: int = 7

    tvae: TVAEConfig = field(default_factory=TVAEConfig)
    ctabgan: CTABGANConfig = field(default_factory=CTABGANConfig)
    tabddpm: TabDDPMConfig = field(default_factory=TabDDPMConfig)
    smote_k: int = 5
    mlef: MLEFConfig = field(default_factory=MLEFConfig)

    # -- presets -----------------------------------------------------------------
    @classmethod
    def ci(cls) -> "ExperimentConfig":
        """Small enough for unit tests and quick benchmark runs."""
        return cls(
            n_raw_jobs=6_000,
            n_synthetic=1_500,
            tvae=TVAEConfig(latent_dim=16, hidden_dims=(64,), epochs=8, batch_size=256),
            ctabgan=CTABGANConfig(
                noise_dim=32, generator_dims=(64,), discriminator_dims=(64,),
                gmm_components=4, epochs=8, batch_size=256,
            ),
            tabddpm=TabDDPMConfig(
                n_timesteps=100, hidden_dims=(256, 256), time_embedding_dim=64,
                epochs=60, batch_size=256, learning_rate=1e-3,
            ),
            mlef=MLEFConfig(n_estimators=40, learning_rate=0.3, max_depth=6),
        )

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """Laptop-scale configuration used for EXPERIMENTS.md."""
        return cls(
            n_raw_jobs=60_000,
            tvae=TVAEConfig(epochs=30),
            ctabgan=CTABGANConfig(epochs=30),
            tabddpm=TabDDPMConfig(epochs=40),
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's scale: millions of rows, 30k training epochs, CatBoost
        settings of depth 10 / lr 1.0 / 200 iterations."""
        return cls(
            n_raw_jobs=2_400_000,
            tvae=TVAEConfig(epochs=30_000 // 100),  # epochs over full data ≈ paper steps
            ctabgan=CTABGANConfig(epochs=300),
            tabddpm=TabDDPMConfig(n_timesteps=1000, epochs=300),
            mlef=MLEFConfig.paper(),
        )

    def with_models(self, models: Sequence[str]) -> "ExperimentConfig":
        """Return a copy restricted to the given models."""
        return replace(self, models=tuple(models))
