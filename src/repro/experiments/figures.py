"""Figure experiments: the data series behind Figs. 1–5 of the paper.

Each function returns plain dictionaries of numpy arrays / floats so the
benchmark harness and the CLI can print the series (the paper shows them as
plots; the reproduction reports the underlying numbers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import DatasetBundle, build_dataset
from repro.experiments.table1 import build_model, _DISPLAY_NAMES
from repro.metrics.correlation import association_difference, association_matrix
from repro.metrics.distribution import histogram_series, top_k_frequencies
from repro.panda.pipeline import dataset_profile
from repro.scheduler.broker import make_broker
from repro.scheduler.cluster import GridCluster
from repro.scheduler.jobs import jobs_from_table
from repro.scheduler.simulator import GridSimulator
from repro.tabular.table import Table
from repro.utils.rng import derive_seed


# ---------------------------------------------------------------------------
# Fig. 1 — cumulative data volume over time
# ---------------------------------------------------------------------------
def fig1_data_volume(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: Optional[DatasetBundle] = None,
    n_bins: int = 30,
) -> Dict[str, np.ndarray]:
    """Cumulative input data volume (bytes) processed over the window.

    The paper's Fig. 1 shows ATLAS's stored volume growing towards the exabyte
    scale; the reproduction reports the monotone cumulative volume of data
    consumed by the generated job stream, binned over the observation window.
    """
    config = config or ExperimentConfig.ci()
    data = dataset or build_dataset(config)
    times = np.asarray(data.table["creationtime"], dtype=np.float64)
    volumes = np.asarray(data.table["inputfilebytes"], dtype=np.float64)
    order = np.argsort(times)
    edges = np.linspace(0.0, config.n_days, n_bins + 1)
    per_bin, _ = np.histogram(times[order], bins=edges, weights=volumes[order])
    cumulative = np.cumsum(per_bin)
    return {
        "day": 0.5 * (edges[:-1] + edges[1:]),
        "bytes_per_bin": per_bin,
        "cumulative_bytes": cumulative,
        "total_petabytes": np.array([cumulative[-1] / 1e15]),
    }


# ---------------------------------------------------------------------------
# Fig. 2 — job-allocation setting: brokerage policies and real-vs-synthetic
# ---------------------------------------------------------------------------
def fig2_scheduler_comparison(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: Optional[DatasetBundle] = None,
    synthetic: Optional[Table] = None,
    brokers: Sequence[str] = ("random", "least_loaded", "data_locality"),
    max_jobs: int = 4000,
    capacity_scale: float = 0.0002,
    time_compression: float = 100.0,
) -> Dict[str, object]:
    """Grid-simulation comparison of brokerage policies (the Fig. 2 setting).

    Runs every brokerage policy on the real (held-out) workload and, when a
    synthetic table is provided, re-runs every policy on the synthetic
    workload so the real-vs-surrogate gap can be reported at the system level.

    The experiment-scale traces carry orders of magnitude fewer jobs than the
    production stream (the paper sees ~16k analysis jobs/day), so arrival
    times are compressed by ``time_compression`` and the simulated site
    capacities are scaled down by ``capacity_scale`` to recreate realistic
    contention (non-zero queue waits) at experiment scale.
    """
    config = config or ExperimentConfig.ci()
    data = dataset or build_dataset(config)

    def compress(table: Table) -> Table:
        times = np.asarray(table["creationtime"], dtype=np.float64) / max(time_compression, 1e-9)
        return table.with_column("creationtime", times, "numerical")

    def simulate(table: Table, label: str) -> List[Dict[str, object]]:
        jobs = jobs_from_table(compress(table))[:max_jobs]
        rows: List[Dict[str, object]] = []
        for broker_name in brokers:
            cluster = GridCluster(data.generator.sites, capacity_scale=capacity_scale, min_capacity=1)
            broker = make_broker(
                broker_name, cluster, seed=derive_seed(config.seed, "broker", broker_name)
            )
            result = GridSimulator(cluster, broker).run(jobs)
            row = result.as_row()
            row["workload"] = label
            rows.append(row)
        return rows

    rows = simulate(data.test, "real")
    if synthetic is not None:
        rows.extend(simulate(synthetic, "synthetic"))
    return {"rows": rows, "n_jobs": min(max_jobs, len(data.test))}


# ---------------------------------------------------------------------------
# Fig. 3 — dataset profile and filtering funnel
# ---------------------------------------------------------------------------
def fig3_dataset_profile(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: Optional[DatasetBundle] = None,
) -> Dict[str, object]:
    """Feature profile (Fig. 3a) and filtering funnel (Fig. 3b)."""
    config = config or ExperimentConfig.ci()
    data = dataset or build_dataset(config)
    return {
        "profile": dataset_profile(data.table),
        "funnel": data.filter_report.as_rows(),
        "train_rows": data.n_train,
        "test_rows": data.n_test,
    }


# ---------------------------------------------------------------------------
# Fig. 4 — per-feature distributions, ground truth vs every model
# ---------------------------------------------------------------------------
def fig4_distributions(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: Optional[DatasetBundle] = None,
    synthetic_tables: Optional[Dict[str, Table]] = None,
    bins: int = 40,
    top_k: int = 5,
) -> Dict[str, object]:
    """Histogram series for numerical features (4a) and top-k category
    frequencies for categorical features (4b), per model.

    When ``synthetic_tables`` is not supplied, the models listed in the config
    are trained here (that makes this experiment as expensive as Table I).
    """
    config = config or ExperimentConfig.ci()
    data = dataset or build_dataset(config)
    if synthetic_tables is None:
        synthetic_tables = {}
        n_synthetic = config.n_synthetic or data.n_train
        for name in config.models:
            display = _DISPLAY_NAMES.get(name.lower(), name)
            model = build_model(name, config)
            model.fit(data.train)
            synthetic_tables[display] = model.sample(
                n_synthetic, seed=derive_seed(config.seed, "fig4", name)
            )

    numerical: Dict[str, Dict[str, object]] = {}
    for column in data.train.schema.numerical:
        numerical[column] = {
            model: histogram_series(data.train[column], synth[column], bins=bins)
            for model, synth in synthetic_tables.items()
        }
    categorical: Dict[str, Dict[str, object]] = {}
    for column in data.train.schema.categorical:
        categorical[column] = {
            model: top_k_frequencies(data.train, synth, column, k=top_k)
            for model, synth in synthetic_tables.items()
        }
    return {
        "numerical": numerical,
        "categorical": categorical,
        "models": list(synthetic_tables.keys()),
    }


# ---------------------------------------------------------------------------
# Fig. 5 — association matrices and their differences
# ---------------------------------------------------------------------------
def fig5_correlations(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: Optional[DatasetBundle] = None,
    synthetic_tables: Optional[Dict[str, Table]] = None,
) -> Dict[str, object]:
    """Ground-truth association matrix (5a) plus per-model synthetic matrices
    and difference matrices (5b)."""
    config = config or ExperimentConfig.ci()
    data = dataset or build_dataset(config)
    if synthetic_tables is None:
        synthetic_tables = {}
        n_synthetic = config.n_synthetic or data.n_train
        for name in config.models:
            display = _DISPLAY_NAMES.get(name.lower(), name)
            model = build_model(name, config)
            model.fit(data.train)
            synthetic_tables[display] = model.sample(
                n_synthetic, seed=derive_seed(config.seed, "fig5", name)
            )

    gt_matrix, columns = association_matrix(data.train)
    per_model = {
        model: association_difference(data.train, synth)
        for model, synth in synthetic_tables.items()
    }
    return {
        "columns": columns,
        "ground_truth": gt_matrix,
        "models": per_model,
    }
