"""Computing-site catalog with HS23 processing power and Zipf popularity.

The ATLAS grid comprises ~150 sites of very different sizes; a handful of
Tier-1 centres (BNL, CERN, TRIUMF, …) absorb a large share of user-analysis
jobs while a long tail of Tier-2 sites each run a few percent.  The catalog
models that imbalance with a Zipf-like popularity law and assigns each site an
HS23-per-core benchmark score (used to convert core-hours into the paper's
``workload`` feature) and a reliability that drives job failure rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng

#: Real-world-inspired site names.  Order matters: earlier names get larger
#: popularity under the Zipf law, mirroring the dominance of Tier-1 centres
#: (the paper's Fig. 4b shows BNL as the top computing site).
DEFAULT_SITE_NAMES: Sequence[str] = (
    "BNL", "CERN-P1", "TRIUMF", "FZK-LCG2", "IN2P3-CC", "RAL-LCG2",
    "PIC", "NDGF-T1", "SARA-MATRIX", "INFN-T1", "MWT2", "AGLT2",
    "SWT2_CPB", "NET2", "SLAC", "UKI-NORTHGRID-MAN-HEP", "UKI-SCOTGRID-GLASGOW",
    "DESY-HH", "DESY-ZN", "LRZ-LMU", "MPPMU", "GoeGrid", "wuppertalprod",
    "PRAGUELCG2", "CSCS-LCG2", "UNIBE-LHEP", "IFIC-LCG2", "IFAE",
    "TOKYO-LCG2", "HIROSHIMA", "AUSTRALIA-ATLAS", "BEIJING-LCG2",
    "RU-PROTVINO-IHEP", "JINR", "GRIF-LAL", "GRIF-IRFU", "LAPP",
    "CPPM", "LPC-CLERMONT", "ROMA1", "NAPOLI", "MILANO", "FRASCATI",
    "CA-WATERLOO-T2", "CA-SFU-T2", "TW-FTT", "SIGNET", "ARNES",
    "CYFRONET-LCG2", "WUT-LCG2", "BU_ATLAS", "OU_OCHEP", "UTA_SWT2",
    "ANLASC", "ORNL-T3", "NERSC", "BNL_CLOUD", "CERN-EXTENSION",
    "UIO-CLOUD", "UAM-LCG2",
)


@dataclass(frozen=True)
class ComputingSite:
    """A grid computing site.

    Attributes
    ----------
    name:
        PanDA site name.
    hs23_per_core:
        HEP-score-23 benchmark per core; converts core-hours to workload units.
    n_cores:
        Total cores available for user analysis (used by the grid simulator).
    reliability:
        Probability that a job at this site finishes successfully, before
        workload-dependent corrections.
    region:
        Coarse geographic region (used by data-locality brokerage).
    """

    name: str
    hs23_per_core: float
    n_cores: int
    reliability: float
    region: str

    def core_hours_to_workload(self, core_hours: np.ndarray) -> np.ndarray:
        """Convert core-hours to HS23-weighted workload units."""
        return np.asarray(core_hours, dtype=np.float64) * self.hs23_per_core


_REGIONS = ("US", "CERN", "EU", "UK", "ASIA", "CA", "OTHER")


class SiteCatalog:
    """Catalog of computing sites plus their popularity distribution."""

    def __init__(self, sites: Sequence[ComputingSite], popularity: Optional[np.ndarray] = None):
        if not sites:
            raise ValueError("SiteCatalog requires at least one site")
        self.sites: List[ComputingSite] = list(sites)
        if popularity is None:
            popularity = np.ones(len(self.sites))
        popularity = np.asarray(popularity, dtype=np.float64)
        if popularity.shape[0] != len(self.sites):
            raise ValueError("popularity must have one entry per site")
        if (popularity < 0).any() or popularity.sum() <= 0:
            raise ValueError("popularity must be non-negative with positive sum")
        self.popularity = popularity / popularity.sum()
        self._by_name: Dict[str, ComputingSite] = {s.name: s for s in self.sites}
        if len(self._by_name) != len(self.sites):
            raise ValueError("site names must be unique")

    # -- constructors ----------------------------------------------------------
    @classmethod
    def default(
        cls,
        n_sites: int = 40,
        *,
        zipf_exponent: float = 1.1,
        seed: SeedLike = None,
    ) -> "SiteCatalog":
        """Build a default catalog of ``n_sites`` sites with Zipf popularity."""
        if n_sites < 1:
            raise ValueError("n_sites must be at least 1")
        rng = as_rng(seed)
        names = list(DEFAULT_SITE_NAMES[:n_sites])
        # Synthesize extra names if more sites than the built-in list are asked for.
        while len(names) < n_sites:
            names.append(f"T2_SITE_{len(names):03d}")
        sites: List[ComputingSite] = []
        for rank, name in enumerate(names):
            # Larger sites tend to have newer hardware (higher HS23/core) and
            # marginally better reliability.
            hs23 = float(np.clip(rng.normal(15.0 - 0.05 * rank, 2.0), 8.0, 25.0))
            n_cores = int(np.clip(rng.lognormal(mean=9.5 - 0.04 * rank, sigma=0.4), 500, 50_000))
            reliability = float(np.clip(rng.normal(0.92 - 0.0015 * rank, 0.03), 0.7, 0.995))
            region = _REGIONS[rank % len(_REGIONS)] if rank >= 2 else ("US" if rank == 0 else "CERN")
            sites.append(
                ComputingSite(
                    name=name,
                    hs23_per_core=hs23,
                    n_cores=n_cores,
                    reliability=reliability,
                    region=region,
                )
            )
        popularity = 1.0 / np.arange(1, n_sites + 1) ** zipf_exponent
        return cls(sites, popularity)

    # -- accessors ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sites)

    def __getitem__(self, name: str) -> ComputingSite:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown computing site {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    @property
    def names(self) -> List[str]:
        return [s.name for s in self.sites]

    def hs23_of(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised lookup of HS23-per-core for an array of site names."""
        table = {s.name: s.hs23_per_core for s in self.sites}
        return np.array([table[n] for n in np.asarray(names).astype(str)])

    def reliability_of(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised lookup of site reliability."""
        table = {s.name: s.reliability for s in self.sites}
        return np.array([table[n] for n in np.asarray(names).astype(str)])

    def sample_sites(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` site names according to the popularity distribution."""
        idx = rng.choice(len(self.sites), size=n, p=self.popularity)
        return np.array(self.names, dtype=object)[idx].astype(str)

    def total_cores(self) -> int:
        return int(sum(s.n_cores for s in self.sites))
