"""Filtering and feature-derivation pipeline (paper Fig. 3b).

The raw PanDA stream is reduced to the nine-column training table in four
stages, each reported in a :class:`FilterReport` so the Fig. 3(b) funnel can
be regenerated:

1. keep only user-analysis jobs,
2. keep only jobs whose input dataset is a DAOD flavour,
3. keep only jobs in a final status (finished / failed / cancelled / closed),
4. parse the dataset name into project / prodstep / datatype and derive the
   HS23-weighted ``workload`` feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.panda.daod import parse_dataset_names
from repro.panda.records import JOB_STATUSES, PANDA_SCHEMA
from repro.panda.sites import SiteCatalog
from repro.panda.workload import hs23_workload
from repro.tabular.table import Table


@dataclass
class FilterStage:
    """One stage of the funnel: its name and the row count after it ran."""

    name: str
    rows_after: int
    rows_removed: int


@dataclass
class FilterReport:
    """Row counts through the funnel, mirroring the paper's Fig. 3(b)."""

    gross_records: int
    stages: List[FilterStage] = field(default_factory=list)

    def add(self, name: str, rows_before: int, rows_after: int) -> None:
        self.stages.append(FilterStage(name, rows_after, rows_before - rows_after))

    @property
    def final_records(self) -> int:
        return self.stages[-1].rows_after if self.stages else self.gross_records

    def as_rows(self) -> List[Dict[str, object]]:
        """Funnel as a list of dicts (for printing/benchmarks)."""
        rows: List[Dict[str, object]] = [
            {"stage": "gross PanDA records", "rows": self.gross_records, "removed": 0}
        ]
        for stage in self.stages:
            rows.append({"stage": stage.name, "rows": stage.rows_after, "removed": stage.rows_removed})
        return rows

    def format(self) -> str:
        lines = ["Filtering funnel (Fig. 3b)"]
        for row in self.as_rows():
            lines.append(f"  {row['stage']:<34} {row['rows']:>10,d}   (-{row['removed']:,d})")
        return "\n".join(lines)


class FilteringPipeline:
    """Reduce raw records to the nine-feature training table."""

    def __init__(self, sites: SiteCatalog):
        self.sites = sites

    def run(self, raw: Table) -> Tuple[Table, FilterReport]:
        """Apply all stages; returns the final table and the funnel report."""
        report = FilterReport(gross_records=len(raw))

        # Stage 1: user-analysis jobs only.
        analysis = raw.mask(np.asarray(raw["tasktype"]) == "analysis")
        report.add("user analysis jobs", len(raw), len(analysis))

        # Stage 2: DAOD input datasets only (parsed once per distinct dataset;
        # the parsed fields are masked through the remaining stages so the
        # names are never parsed twice).
        parsed = parse_dataset_names(analysis["inputdatasetname"])
        daod_mask = np.char.startswith(parsed["datatype"], "DAOD")
        daod = analysis.mask(daod_mask)
        parsed = {key: values[daod_mask] for key, values in parsed.items()}
        report.add("DAOD input datasets", len(analysis), len(daod))

        # Stage 3: final job statuses only.
        final_mask = np.isin(np.asarray(daod["jobstatus"]), np.asarray(JOB_STATUSES))
        final = daod.mask(final_mask)
        parsed = {key: values[final_mask] for key, values in parsed.items()}
        report.add("final job status", len(daod), len(final))

        # Stage 4: parse nomenclature and derive workload.
        table = self.derive_features(final, parsed=parsed)
        report.add("feature derivation", len(final), len(table))
        return table, report

    def derive_features(
        self, records: Table, *, parsed: Optional[Dict[str, np.ndarray]] = None
    ) -> Table:
        """Parse dataset names and compute the workload feature.

        Dataset names are parsed once per distinct name
        (:func:`~repro.panda.daod.parse_dataset_names`), so this stage scales
        with the number of datasets rather than the number of job rows.
        ``parsed`` lets :meth:`run` pass the already-parsed (and row-masked)
        nomenclature fields instead of re-parsing.
        """
        if parsed is None:
            parsed = parse_dataset_names(records["inputdatasetname"])
        project = parsed["project"]
        prodstep = parsed["prodstep"]
        datatype = parsed["datatype"]

        hs23 = self.sites.hs23_of(records["computingsite"])
        workload = hs23_workload(records["corecount"], records["cputime_hours"], hs23)

        data = {
            "workload": workload,
            "creationtime": records["creationtime"],
            "ninputdatafiles": records["ninputdatafiles"],
            "inputfilebytes": records["inputfilebytes"],
            "jobstatus": records["jobstatus"],
            "computingsite": records["computingsite"],
            "project": project,
            "prodstep": prodstep,
            "datatype": datatype,
        }
        return Table(data, PANDA_SCHEMA)


def dataset_profile(table: Table) -> List[Dict[str, object]]:
    """Feature profile of the filtered table — the paper's Fig. 3(a)."""
    return table.profile()
