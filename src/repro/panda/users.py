"""User population model.

The ATLAS collaboration has several thousand active analysers; at any time a
small subset dominates the submission volume (students running large grid
campaigns before conferences).  The population model captures that
heterogeneity with a gamma-distributed activity rate per user, which is all
the workload generator needs to mix user-specific habits (preferred projects,
typical input sizes) into the job stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class User:
    """One analysis user with submission habits.

    Attributes
    ----------
    name:
        Anonymised user identifier.
    activity:
        Relative submission rate (arbitrary units; normalised in the population).
    burstiness:
        Multiplier of the campaign-burst amplitude for this user.
    preferred_project_index:
        Index into the project list the user works on most often.
    """

    name: str
    activity: float
    burstiness: float
    preferred_project_index: int


class UserPopulation:
    """A population of analysis users with heterogeneous activity."""

    def __init__(self, users: Sequence[User]):
        if not users:
            raise ValueError("UserPopulation requires at least one user")
        self.users: List[User] = list(users)
        activity = np.array([u.activity for u in self.users], dtype=np.float64)
        if (activity <= 0).any():
            raise ValueError("user activity must be positive")
        self.activity_distribution = activity / activity.sum()

    @classmethod
    def default(
        cls, n_users: int = 500, *, n_projects: int = 8, seed: SeedLike = None
    ) -> "UserPopulation":
        """Create ``n_users`` with gamma-distributed activity rates."""
        if n_users < 1:
            raise ValueError("n_users must be at least 1")
        rng = as_rng(seed)
        activity = rng.gamma(shape=0.6, scale=1.0, size=n_users) + 1e-3
        burstiness = rng.uniform(0.5, 2.0, size=n_users)
        preferred = rng.integers(0, max(n_projects, 1), size=n_users)
        users = [
            User(
                name=f"user{idx:04d}",
                activity=float(activity[idx]),
                burstiness=float(burstiness[idx]),
                preferred_project_index=int(preferred[idx]),
            )
            for idx in range(n_users)
        ]
        return cls(users)

    def __len__(self) -> int:
        return len(self.users)

    def sample_users(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` user indices proportionally to their activity."""
        return rng.choice(len(self.users), size=n, p=self.activity_distribution)

    def top_users(self, k: int = 10) -> List[User]:
        """The ``k`` most active users."""
        order = np.argsort(-self.activity_distribution)[:k]
        return [self.users[i] for i in order]
