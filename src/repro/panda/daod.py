"""ATLAS dataset nomenclature and the DAOD dataset catalog.

ATLAS dataset names follow a dotted convention
``project.runNumber.streamName.prodStep.dataType.version`` (ATLAS Dataset
Nomenclature, ref. [11] of the paper).  The paper splits the name of each
job's input dataset into its ``project``, ``prodstep`` and ``datatype``
fields and keeps only jobs whose datatype is a DAOD flavour.

The catalog below generates a population of datasets with realistic,
imbalanced frequencies across projects (Monte-Carlo campaigns vs. data-taking
periods), production steps and data types — including non-DAOD types so the
filtering funnel removes a realistic fraction of raw records — plus
per-dataset file counts and byte sizes with heavy tails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.tabular.encoding import FrequencyTable
from repro.utils.rng import SeedLike, as_rng

#: MC campaigns and data-taking projects with rough relative popularity.
DEFAULT_PROJECTS: Sequence[Tuple[str, float]] = (
    ("mc23_13p6TeV", 0.33),
    ("mc20_13TeV", 0.22),
    ("data22_13p6TeV", 0.16),
    ("data18_13TeV", 0.10),
    ("mc16_13TeV", 0.08),
    ("data23_13p6TeV", 0.06),
    ("mc21_13p6TeV", 0.03),
    ("data17_13TeV", 0.02),
)

#: Production steps.  User analysis overwhelmingly reads `deriv` outputs.
DEFAULT_PRODSTEPS: Sequence[Tuple[str, float]] = (
    ("deriv", 0.78),
    ("merge", 0.12),
    ("recon", 0.06),
    ("simul", 0.04),
)

#: DAOD data types (kept by the filter), with PHYS/PHYSLITE dominating.
DAOD_DATATYPES: Sequence[Tuple[str, float]] = (
    ("DAOD_PHYS", 0.42),
    ("DAOD_PHYSLITE", 0.28),
    ("DAOD_JETM1", 0.07),
    ("DAOD_EXOT2", 0.05),
    ("DAOD_HIGG1D1", 0.05),
    ("DAOD_SUSY5", 0.04),
    ("DAOD_TOPQ1", 0.04),
    ("DAOD_STDM4", 0.03),
    ("DAOD_EGAM1", 0.02),
)

#: Non-DAOD data types present in raw records and removed by the filter.
NON_DAOD_DATATYPES: Sequence[Tuple[str, float]] = (
    ("AOD", 0.45),
    ("ESD", 0.15),
    ("HITS", 0.15),
    ("EVNT", 0.15),
    ("RAW", 0.10),
)


class DatasetType(str):
    """Marker type for dataset datatype strings (documentation aid)."""


def parse_dataset_name(name: str) -> Dict[str, str]:
    """Parse an ATLAS dataset name into its nomenclature fields.

    Returns a dict with ``project``, ``run``, ``stream``, ``prodstep``,
    ``datatype`` and ``version`` keys.  Raises ``ValueError`` for names that
    do not have the canonical six dot-separated sections.
    """
    parts = str(name).split(".")
    if len(parts) != 6:
        raise ValueError(
            f"dataset name {name!r} does not follow the 6-field ATLAS convention"
        )
    project, run, stream, prodstep, datatype, version = parts
    return {
        "project": project,
        "run": run,
        "stream": stream,
        "prodstep": prodstep,
        "datatype": datatype,
        "version": version,
    }


def parse_dataset_names(names: Sequence[str]) -> Dict[str, np.ndarray]:
    """Vectorised :func:`parse_dataset_name` over an array of dataset names.

    Real PanDA streams reference each dataset from many jobs, so parsing is
    memoised over the *unique* names (a dict-based factorization, cheaper than
    sorting the strings) and the per-row fields are gathered back through the
    integer codes; the parse cost scales with distinct datasets, not rows.
    Returns ``{field: array_of_str}`` with the same six keys as
    :func:`parse_dataset_name`.  Malformed names raise ``ValueError`` exactly
    as the scalar parser does (though not necessarily at the first bad *row*,
    since each distinct name is parsed only once).
    """
    arr = np.asarray(names)
    if arr.dtype.kind != "U":
        arr = arr.astype(str)
    code_of: Dict[str, int] = {}
    codes = np.empty(arr.size, dtype=np.int64)
    uniques: List[str] = []
    for i, name in enumerate(arr.tolist()):
        code = code_of.get(name)
        if code is None:
            code = code_of[name] = len(uniques)
            uniques.append(name)
        codes[i] = code
    fields = ("project", "run", "stream", "prodstep", "datatype", "version")
    parsed = [parse_dataset_name(name) for name in uniques]
    out: Dict[str, np.ndarray] = {}
    for key in fields:
        # A unicode-dtype unique table makes the per-row gather a plain C copy.
        table = np.array([record[key] for record in parsed], dtype=str)
        out[key] = (
            table[codes] if table.size else np.empty(arr.size, dtype="<U1")
        )
    return out


def is_daod(datatype: str) -> bool:
    """True when a datatype string is a DAOD flavour."""
    return str(datatype).startswith("DAOD")


@dataclass(frozen=True)
class DatasetRecord:
    """One dataset entity registered in the (synthetic) Rucio catalog."""

    name: str
    project: str
    prodstep: str
    datatype: str
    n_files: int
    total_bytes: float

    @property
    def is_daod(self) -> bool:
        return is_daod(self.datatype)


class DatasetCatalog:
    """Population of datasets available for user-analysis input.

    Parameters
    ----------
    n_datasets:
        Number of distinct datasets.  The paper notes most DAOD datasets are
        used only once or twice during the observation window, so the number
        of datasets is of the same order as the number of jobs divided by a
        small reuse factor.
    daod_fraction:
        Fraction of datasets that are DAOD (the remainder exercise the
        non-DAOD filter).
    """

    def __init__(
        self,
        n_datasets: int = 2000,
        *,
        daod_fraction: float = 0.8,
        seed: SeedLike = None,
    ) -> None:
        if n_datasets < 1:
            raise ValueError("n_datasets must be at least 1")
        if not 0.0 < daod_fraction <= 1.0:
            raise ValueError("daod_fraction must be in (0, 1]")
        rng = as_rng(seed)
        self.n_datasets = int(n_datasets)
        self.daod_fraction = float(daod_fraction)

        projects = FrequencyTable(*zip(*DEFAULT_PROJECTS))
        prodsteps = FrequencyTable(*zip(*DEFAULT_PRODSTEPS))
        daod_types = FrequencyTable(*zip(*DAOD_DATATYPES))
        other_types = FrequencyTable(*zip(*NON_DAOD_DATATYPES))

        n_daod = int(round(self.n_datasets * self.daod_fraction))
        n_other = self.n_datasets - n_daod

        project_draw = projects.sample(self.n_datasets, rng)
        prodstep_draw = prodsteps.sample(self.n_datasets, rng)
        datatype_draw = np.concatenate(
            [daod_types.sample(n_daod, rng), other_types.sample(n_other, rng)]
        )
        # Non-DAOD datasets come from earlier production steps; overwrite their
        # prodstep so the joint (prodstep, datatype) structure stays coherent.
        non_daod_mask = ~np.char.startswith(datatype_draw.astype(str), "DAOD")
        prodstep_draw = prodstep_draw.astype(object)
        earlier_steps = np.array(["recon", "simul", "merge"], dtype=object)
        prodstep_draw[non_daod_mask] = rng.choice(earlier_steps, size=int(non_daod_mask.sum()))

        run_numbers = rng.integers(100_000, 999_999, size=self.n_datasets)
        versions = rng.integers(1, 40, size=self.n_datasets)

        # File counts are heavy-tailed: most datasets have tens of files, a few
        # have thousands.  Bytes per file depend on the data type (PHYSLITE is
        # much smaller than PHYS, AOD is larger still).
        n_files = np.clip(rng.lognormal(mean=3.2, sigma=1.1, size=self.n_datasets), 1, 20_000)
        n_files = np.rint(n_files).astype(np.int64)
        bytes_per_file = np.empty(self.n_datasets)
        type_scale = {
            "DAOD_PHYSLITE": 0.4e9,
            "DAOD_PHYS": 1.5e9,
            "AOD": 3.0e9,
            "ESD": 5.0e9,
            "RAW": 6.0e9,
        }
        for i, dtype in enumerate(datatype_draw.astype(str)):
            scale = type_scale.get(dtype, 1.0e9)
            bytes_per_file[i] = rng.lognormal(mean=np.log(scale), sigma=0.5)
        total_bytes = n_files * bytes_per_file

        streams = np.where(
            np.char.startswith(project_draw.astype(str), "data"), "physics_Main", "e8514_s4162_r14622"
        )
        self.datasets: List[DatasetRecord] = []
        for i in range(self.n_datasets):
            name = (
                f"{project_draw[i]}.{run_numbers[i]:06d}.{streams[i]}."
                f"{prodstep_draw[i]}.{datatype_draw[i]}.p{versions[i]:04d}"
            )
            self.datasets.append(
                DatasetRecord(
                    name=name,
                    project=str(project_draw[i]),
                    prodstep=str(prodstep_draw[i]),
                    datatype=str(datatype_draw[i]),
                    n_files=int(n_files[i]),
                    total_bytes=float(total_bytes[i]),
                )
            )
        # Columnar views of the catalog, cached once so per-job gathers in the
        # workload generator are single fancy-indexing operations instead of
        # Python loops over DatasetRecord objects.
        self.name_array = np.array([d.name for d in self.datasets], dtype=object)
        self.project_array = project_draw.astype(object).astype(str)
        self.prodstep_array = prodstep_draw.astype(object).astype(str)
        self.datatype_array = datatype_draw.astype(object).astype(str)
        self.n_files_array = n_files.astype(np.float64)
        self.total_bytes_array = total_bytes.astype(np.float64)

        # Dataset popularity is itself Zipf-like: a few derivations are hammered
        # by many analyses while most are touched once or twice.
        ranks = rng.permutation(self.n_datasets) + 1
        popularity = 1.0 / ranks ** 1.05
        self.popularity = popularity / popularity.sum()

    # -- accessors ------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_datasets

    def __getitem__(self, index: int) -> DatasetRecord:
        return self.datasets[index]

    @property
    def daod_datasets(self) -> List[DatasetRecord]:
        return [d for d in self.datasets if d.is_daod]

    def sample_indices(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` dataset indices according to dataset popularity."""
        return rng.choice(self.n_datasets, size=n, p=self.popularity)

    def names(self) -> List[str]:
        return [d.name for d in self.datasets]
