"""Schemas of raw and filtered PanDA job records.

The paper's final training table (Fig. 3a) has nine columns: four numerical
(``creationtime`` in days since the start of the observation window,
``ninputdatafiles``, ``inputfilebytes``, ``workload``) and five categorical
(``jobstatus``, ``computingsite``, ``project``, ``prodstep``, ``datatype``).

Raw PanDA records carry far more columns; the raw schema here keeps the
subset needed to exercise the paper's filtering funnel (Fig. 3b): the task
type (user analysis vs. centralised production), the full dataset name (from
which project / prodstep / datatype are parsed), the per-job core count and
CPU time (from which ``workload`` is derived) and the raw job status.
"""

from __future__ import annotations

from repro.tabular.schema import TableSchema

#: Final job statuses kept after filtering (paper: jobstatus has 4 unique values).
JOB_STATUSES = ("finished", "failed", "cancelled", "closed")

#: Transient statuses present in raw records but removed by the pipeline.
TRANSIENT_STATUSES = ("running", "pending", "transferring")

#: Numerical features of the training table, in schema order.
NUMERICAL_FEATURES = (
    "workload",
    "creationtime",
    "ninputdatafiles",
    "inputfilebytes",
)

#: Categorical features of the training table, in schema order.
CATEGORICAL_FEATURES = (
    "jobstatus",
    "computingsite",
    "project",
    "prodstep",
    "datatype",
)

#: Schema of the filtered nine-column training table (paper Fig. 3a).
PANDA_SCHEMA = TableSchema.from_columns(
    numerical=list(NUMERICAL_FEATURES),
    categorical=list(CATEGORICAL_FEATURES),
)

#: Schema of raw (pre-filtering) records produced by the generator.
RAW_SCHEMA = TableSchema.from_columns(
    numerical=[
        "creationtime",
        "ninputdatafiles",
        "inputfilebytes",
        "corecount",
        "cputime_hours",
    ],
    categorical=[
        "tasktype",
        "jobstatus",
        "computingsite",
        "inputdatasetname",
    ],
)

#: Task types present in raw records; only user analysis is kept.
TASK_TYPES = ("analysis", "production")
