"""Non-homogeneous job-arrival process.

The paper highlights that the number of submitted jobs fluctuates strongly
over the 150-day window ("clear time-varying patterns").  The arrival process
here is an inhomogeneous Poisson process whose rate is modulated by

* a diurnal cycle (people submit during working hours),
* a weekly cycle (weekends are quieter),
* a small number of campaign bursts (conference deadlines), and
* slow random drift (an Ornstein–Uhlenbeck-like random walk),

sampled by thinning.  Creation times are expressed in fractional days since
the start of the observation window, matching the paper's ``creationtime``
feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass
class CampaignBurst:
    """A temporary surge of submissions around ``center_day``."""

    center_day: float
    amplitude: float
    width_days: float

    def rate_multiplier(self, t_days: np.ndarray) -> np.ndarray:
        """Gaussian bump multiplier evaluated at ``t_days``."""
        z = (np.asarray(t_days, dtype=np.float64) - self.center_day) / self.width_days
        return 1.0 + self.amplitude * np.exp(-0.5 * z * z)


@dataclass
class ArrivalProcess:
    """Inhomogeneous Poisson arrival process over an observation window.

    Parameters
    ----------
    n_days:
        Length of the observation window in days (the paper uses 150).
    diurnal_amplitude, weekly_amplitude:
        Relative strength of the daily and weekly cycles in [0, 1).
    bursts:
        Campaign bursts; generated randomly by :meth:`default` if omitted.
    drift_scale:
        Standard deviation of the slow log-rate random walk per day.
    """

    n_days: float = 150.0
    diurnal_amplitude: float = 0.4
    weekly_amplitude: float = 0.3
    drift_scale: float = 0.05
    bursts: List[CampaignBurst] = field(default_factory=list)

    @classmethod
    def default(cls, n_days: float = 150.0, *, n_bursts: int = 4, seed: SeedLike = None) -> "ArrivalProcess":
        """Create a process with ``n_bursts`` random campaign bursts."""
        rng = as_rng(seed)
        bursts = [
            CampaignBurst(
                center_day=float(rng.uniform(0.1, 0.9) * n_days),
                amplitude=float(rng.uniform(0.5, 2.5)),
                width_days=float(rng.uniform(2.0, 6.0)),
            )
            for _ in range(n_bursts)
        ]
        return cls(n_days=n_days, bursts=bursts)

    # -- rate function -----------------------------------------------------------
    def rate(self, t_days: np.ndarray, *, drift: Optional[np.ndarray] = None) -> np.ndarray:
        """Relative submission rate (mean ~1) at times ``t_days``."""
        t = np.asarray(t_days, dtype=np.float64)
        rate = np.ones_like(t)
        # Diurnal cycle peaking mid-afternoon UTC.
        rate *= 1.0 + self.diurnal_amplitude * np.sin(2.0 * np.pi * (t - 0.6))
        # Weekly cycle: suppress weekends (days 5 and 6 of each week).
        day_of_week = np.floor(t) % 7
        weekend = (day_of_week >= 5).astype(np.float64)
        rate *= 1.0 - self.weekly_amplitude * weekend
        for burst in self.bursts:
            rate *= burst.rate_multiplier(t)
        if drift is not None:
            rate *= np.interp(t, np.linspace(0.0, self.n_days, drift.size), drift)
        return np.maximum(rate, 1e-6)

    # -- sampling ------------------------------------------------------------------
    def sample_times(self, n_jobs: int, *, seed: SeedLike = None) -> np.ndarray:
        """Draw ``n_jobs`` creation times (days) with density proportional to the rate.

        Uses inverse-CDF sampling on a fine time grid, which is exact in the
        grid limit and fully vectorised.
        """
        if n_jobs < 0:
            raise ValueError("n_jobs must be non-negative")
        rng = as_rng(seed)
        if n_jobs == 0:
            return np.empty(0, dtype=np.float64)
        grid = np.linspace(0.0, self.n_days, max(int(self.n_days * 48), 256))
        # Slow drift sampled once per call so different seeds give different regimes.
        steps = rng.normal(0.0, self.drift_scale, size=64)
        drift = np.exp(np.cumsum(steps) - 0.5 * np.arange(64) * self.drift_scale ** 2 / 64)
        rate = self.rate(grid, drift=drift)
        cdf = np.cumsum(rate)
        cdf /= cdf[-1]
        u = rng.random(n_jobs)
        times = np.interp(u, cdf, grid)
        return np.sort(times)

    def expected_profile(self, bins: int = 150) -> Tuple[np.ndarray, np.ndarray]:
        """Return (bin centers, relative rate) — the deterministic part of the profile."""
        grid = np.linspace(0.0, self.n_days, bins)
        return grid, self.rate(grid)
