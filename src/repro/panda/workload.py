"""Workload derivation.

The paper defines a job's ``workload`` as the product of the number of cores,
the per-core processing power of the assigned site (from the HS23 benchmark)
and the CPU time used.  This module provides that conversion plus helpers to
sample realistic CPU times given the input size and data type.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def hs23_workload(
    core_count: np.ndarray,
    cpu_time_hours: np.ndarray,
    hs23_per_core: np.ndarray,
) -> np.ndarray:
    """Workload = cores x HS23-per-core x CPU hours (HS23-weighted core-hours)."""
    cores = np.asarray(core_count, dtype=np.float64)
    hours = np.asarray(cpu_time_hours, dtype=np.float64)
    power = np.asarray(hs23_per_core, dtype=np.float64)
    if cores.shape != hours.shape or cores.shape != power.shape:
        raise ValueError("core_count, cpu_time_hours and hs23_per_core must align")
    if (cores < 0).any() or (hours < 0).any() or (power < 0).any():
        raise ValueError("workload inputs must be non-negative")
    return cores * power * hours


def sample_cpu_time_hours(
    n_files: np.ndarray,
    file_bytes: np.ndarray,
    datatype: Sequence[str],
    rng: np.random.Generator,
    *,
    base_seconds_per_gb: float = 900.0,
) -> np.ndarray:
    """Sample per-job CPU time as a noisy function of the input volume.

    CPU time grows roughly linearly with the number of gigabytes read,
    modulated by a data-type efficiency factor (PHYSLITE is cheap to process,
    full PHYS and non-derived formats are heavier), with a multiplicative
    log-normal noise term capturing algorithmic variety between analyses.
    This produces the multi-peaked workload distribution visible in the
    paper's Fig. 4(a).
    """
    nf = np.asarray(n_files, dtype=np.float64)
    fb = np.asarray(file_bytes, dtype=np.float64)
    dtypes = np.asarray(datatype).astype(str)
    gigabytes = fb / 1e9

    factor = np.ones(dtypes.shape[0])
    factor[np.char.startswith(dtypes, "DAOD_PHYSLITE")] = 0.35
    factor[dtypes == "DAOD_PHYS"] = 1.0
    factor[np.char.startswith(dtypes, "DAOD_JETM")] = 1.6
    factor[np.char.startswith(dtypes, "DAOD_EXOT")] = 1.4
    factor[np.char.startswith(dtypes, "DAOD_HIGG")] = 1.3
    factor[~np.char.startswith(dtypes, "DAOD")] = 2.5

    noise = rng.lognormal(mean=0.0, sigma=0.6, size=dtypes.shape[0])
    seconds = base_seconds_per_gb * gigabytes * factor * noise
    # Per-file overhead (staging, metadata) keeps tiny jobs from being free.
    seconds += 30.0 * nf * rng.lognormal(0.0, 0.3, size=dtypes.shape[0])
    return seconds / 3600.0


def sample_core_counts(n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample per-job core counts.

    User-analysis payloads are dominated by single-core and 8-core
    (multi-core slot) configurations.
    """
    choices = np.array([1, 1, 1, 2, 4, 8, 8, 8, 16])
    return rng.choice(choices, size=n).astype(np.float64)
