"""Synthetic PanDA/ATLAS workload substrate.

The paper trains on 150 days of real PanDA job-submission records, which are
not publicly available.  This sub-package provides the closest synthetic
equivalent: a statistical model of the ATLAS user-analysis job stream with

* a catalog of computing sites with HS23 benchmark scores and heavy-tailed
  (Zipf) popularity (`sites`),
* the DAOD dataset nomenclature — project, production step, data type — plus
  non-DAOD dataset types so the paper's filtering funnel is meaningful
  (`daod`),
* a user population with heterogeneous submission rates (`users`),
* a non-homogeneous arrival process with diurnal, weekly and campaign-burst
  modulation over a configurable observation window (`temporal`),
* a raw-record generator that couples these pieces with realistic
  cross-feature correlations (`generator`), and
* the Fig. 3(b) filtering/derivation pipeline producing the exact nine-column
  table the surrogates are trained on (`pipeline`).

Every draw is controlled by a single seed, so the "real" data of this
reproduction is itself reproducible.
"""

from repro.panda.records import (
    CATEGORICAL_FEATURES,
    NUMERICAL_FEATURES,
    PANDA_SCHEMA,
    RAW_SCHEMA,
    JOB_STATUSES,
)
from repro.panda.sites import ComputingSite, SiteCatalog
from repro.panda.daod import DatasetCatalog, DatasetType, parse_dataset_name
from repro.panda.users import UserPopulation
from repro.panda.temporal import ArrivalProcess
from repro.panda.workload import hs23_workload
from repro.panda.generator import PandaWorkloadGenerator, GeneratorConfig
from repro.panda.pipeline import FilterReport, FilteringPipeline

__all__ = [
    "CATEGORICAL_FEATURES",
    "NUMERICAL_FEATURES",
    "PANDA_SCHEMA",
    "RAW_SCHEMA",
    "JOB_STATUSES",
    "ComputingSite",
    "SiteCatalog",
    "DatasetCatalog",
    "DatasetType",
    "parse_dataset_name",
    "UserPopulation",
    "ArrivalProcess",
    "hs23_workload",
    "PandaWorkloadGenerator",
    "GeneratorConfig",
    "FilterReport",
    "FilteringPipeline",
]
