"""Synthetic PanDA raw-record generator.

:class:`PandaWorkloadGenerator` couples the site catalog, dataset catalog,
user population and arrival process into a single generator of raw job
records.  The generated table has the columns of a (simplified) PanDA dump
*before* filtering — including production jobs, non-DAOD inputs and transient
job statuses — so the Fig. 3(b) filtering funnel operates on realistic input.

Cross-feature structure built into the generator (and therefore learnable by
the surrogates):

* site choice is biased towards sites in the same "region" as the dataset's
  preferred storage, so ``computingsite`` correlates with ``project``;
* ``inputfilebytes`` is proportional to ``ninputdatafiles`` with a
  datatype-dependent bytes-per-file scale;
* ``workload`` grows with the input volume, with a datatype-dependent cost
  factor and site-dependent HS23 weighting;
* failure probability increases with workload and decreases with site
  reliability, so ``jobstatus`` correlates with both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.panda import workload as wl
from repro.panda.daod import DatasetCatalog
from repro.panda.records import RAW_SCHEMA, TRANSIENT_STATUSES
from repro.panda.sites import SiteCatalog
from repro.panda.temporal import ArrivalProcess
from repro.panda.users import UserPopulation
from repro.tabular.table import Table
from repro.utils.rng import SeedLike, as_rng, derive_seed


@dataclass
class GeneratorConfig:
    """Configuration of the synthetic PanDA stream.

    The defaults are scaled so the default experiment finishes in minutes on a
    laptop; the paper-scale stream (about 2.4 M raw records over 150 days) is
    reachable by raising ``n_jobs``.
    """

    n_jobs: int = 50_000
    n_days: float = 150.0
    n_sites: int = 40
    n_datasets: int = 2_000
    n_users: int = 400
    analysis_fraction: float = 0.72
    daod_fraction: float = 0.80
    transient_fraction: float = 0.06
    seed: Optional[int] = 7

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be positive")
        if not 0.0 < self.analysis_fraction <= 1.0:
            raise ValueError("analysis_fraction must be in (0, 1]")
        if not 0.0 <= self.transient_fraction < 1.0:
            raise ValueError("transient_fraction must be in [0, 1)")


class PandaWorkloadGenerator:
    """Generate raw PanDA-like job records."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        seed = self.config.seed
        self.sites = SiteCatalog.default(self.config.n_sites, seed=derive_seed(seed, "sites"))
        self.datasets = DatasetCatalog(
            self.config.n_datasets,
            daod_fraction=self.config.daod_fraction,
            seed=derive_seed(seed, "datasets"),
        )
        self.users = UserPopulation.default(
            self.config.n_users, seed=derive_seed(seed, "users")
        )
        self.arrivals = ArrivalProcess.default(
            self.config.n_days, seed=derive_seed(seed, "arrivals")
        )

    # -- generation -------------------------------------------------------------
    def generate_raw(self, n_jobs: Optional[int] = None, *, seed: SeedLike = None) -> Table:
        """Generate a raw-record table with ``n_jobs`` rows (pre-filtering)."""
        cfg = self.config
        n = int(n_jobs if n_jobs is not None else cfg.n_jobs)
        rng = as_rng(seed if seed is not None else derive_seed(cfg.seed, "records"))

        creation = self.arrivals.sample_times(n, seed=rng)
        user_idx = self.users.sample_users(n, rng)
        dataset_idx = self.datasets.sample_indices(n, rng)

        # Columnar gathers over the catalog's cached arrays: cost scales with
        # the number of distinct datasets, not with the number of job rows.
        dataset_names = self.datasets.name_array[dataset_idx]
        datatype = self.datasets.datatype_array[dataset_idx]
        ds_files = self.datasets.n_files_array[dataset_idx]
        ds_bytes = self.datasets.total_bytes_array[dataset_idx]

        # A user-analysis job typically reads a subset of the dataset's files.
        read_fraction = np.clip(rng.beta(2.0, 3.0, size=n), 0.02, 1.0)
        n_files = np.maximum(1, np.rint(ds_files * read_fraction)).astype(np.float64)
        bytes_per_file = ds_bytes / np.maximum(ds_files, 1.0)
        input_bytes = n_files * bytes_per_file * rng.lognormal(0.0, 0.15, size=n)

        # Task type: user analysis vs centralized production.
        is_analysis = rng.random(n) < cfg.analysis_fraction
        tasktype = np.where(is_analysis, "analysis", "production")

        # Site choice with mild project/region affinity: hash the project onto a
        # preferred site subset and boost its probability.  The hash must be
        # stable across processes (builtin ``hash`` is salted per interpreter,
        # which would break cross-run replay determinism), so it goes through
        # the SHA-256-backed ``derive_seed``.
        site_names = self.sites.sample_sites(n, rng)
        # Hash once per catalog dataset, then gather per row.
        catalog_codes = np.array(
            [
                derive_seed(0, "project-affinity", p) % len(self.sites)
                for p in self.datasets.project_array
            ]
        )
        project_codes = catalog_codes[dataset_idx]
        affinity = rng.random(n) < 0.25
        preferred_sites = np.array(self.sites.names, dtype=object)[project_codes]
        site_names = np.where(affinity, preferred_sites, site_names).astype(str)

        core_count = wl.sample_core_counts(n, rng)
        cpu_hours = wl.sample_cpu_time_hours(n_files, input_bytes, datatype, rng)

        # Job status: failure probability rises with CPU time, falls with site
        # reliability; a small fraction of records is still in a transient state.
        reliability = self.sites.reliability_of(site_names)
        log_hours = np.log1p(cpu_hours)
        fail_prob = np.clip((1.0 - reliability) * (0.6 + 0.25 * log_hours), 0.0, 0.9)
        u = rng.random(n)
        status = np.full(n, "finished", dtype=object)
        status[u < fail_prob] = "failed"
        cancel_band = (u >= fail_prob) & (u < fail_prob + 0.03)
        status[cancel_band] = "cancelled"
        closed_band = (u >= fail_prob + 0.03) & (u < fail_prob + 0.05)
        status[closed_band] = "closed"
        transient = rng.random(n) < cfg.transient_fraction
        status[transient] = rng.choice(np.array(TRANSIENT_STATUSES, dtype=object), size=int(transient.sum()))

        data: Dict[str, np.ndarray] = {
            "creationtime": creation,
            "ninputdatafiles": n_files,
            "inputfilebytes": input_bytes,
            "corecount": core_count,
            "cputime_hours": cpu_hours,
            "tasktype": tasktype,
            "jobstatus": status.astype(str),
            "computingsite": site_names,
            "inputdatasetname": dataset_names.astype(str),
        }
        return Table(data, RAW_SCHEMA)

    def generate_training_table(
        self, n_jobs: Optional[int] = None, *, seed: SeedLike = None
    ) -> Table:
        """Convenience: generate raw records and run the full filtering pipeline."""
        from repro.panda.pipeline import FilteringPipeline

        raw = self.generate_raw(n_jobs, seed=seed)
        pipeline = FilteringPipeline(self.sites)
        filtered, _report = pipeline.run(raw)
        return filtered
