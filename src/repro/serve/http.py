"""The async multi-tenant front door: one entry point over many services.

:class:`FrontDoor` fans a stream of :class:`~repro.serve.api.RequestSpec`
submissions out across named backends — one
:class:`~repro.serve.service.SamplingService` per served model or registry
stage (``prod`` / ``canary`` serving concurrently is the canonical shape).
Placement goes through a :class:`~repro.scheduler.broker.BackendRouter`,
which models each backend as a one-site grid and brokers every request with
the same :class:`~repro.scheduler.broker.LeastLoadedBroker` policy the
scheduler benchmarks use: an unpinned request lands on the backend with the
most free slots, a request naming its ``model`` is pinned but still counted.
Routing never touches *bytes* — a request's result is a function of its own
seed, whichever backend serves it.

The HTTP endpoint is stdlib-only: an :mod:`asyncio` protocol server
(started with :meth:`FrontDoor.start_http`) running on a background thread,
speaking just enough HTTP/1.1 for clients like ``urllib`` — one request per
connection, JSON in, JSON out.  Routes:

``POST /sample``
    Body: a JSON object with the :class:`~repro.serve.api.RequestSpec`
    fields (``n`` or ``rows``, ``seed``, ``sampling_mode``, ``tenant``,
    ``priority``, ``deadline``) plus two routing extras — ``model`` (pin a
    backend) and ``fingerprint_only`` (return the table's SHA-256 instead
    of its columns).  Responses: ``200`` with ``{"fingerprint", "rows",
    "model", "columns"?}``; ``400`` on a malformed spec; ``429`` with a
    ``Retry-After`` header when admission control rejects
    (:class:`~repro.serve.admission.AdmissionRejected`) or the in-flight
    budget is full.  Blocking waits happen on executor threads, so slow
    requests never stall the accept loop.
``GET /stats``
    The unified stats tree per backend (see
    :meth:`~repro.serve.service.ServiceStats.to_dict`) plus the router's
    per-backend in-flight load.
``GET /models``
    The routable backends and their worker/degraded state.
``GET /metrics``
    Prometheus text exposition (version 0.0.4) over every backend's
    :class:`~repro.obs.metrics.MetricsRegistry`, each series tagged
    ``backend="<name>"`` — the scrape surface behind the same numbers
    ``/stats`` reports (see :func:`~repro.obs.metrics.render_prometheus_multi`).
``GET /healthz``
    Liveness: ``{"status": "ok"}`` while the server accepts connections.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.obs.metrics import render_prometheus_multi
from repro.scheduler.broker import BackendRouter, Broker
from repro.serve.admission import AdmissionRejected, ServiceOverloaded
from repro.serve.api import RequestSpec, table_fingerprint
from repro.serve.service import SampleRequest, SamplingService
from repro.tabular.table import Table

__all__ = ["FrontDoor", "FrontDoorTicket"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class FrontDoorTicket:
    """Handle for a routed request: the service handle plus its slot.

    Wraps the backend's :class:`~repro.serve.service.SampleRequest` and
    releases the request's router slot once the request resolves, so the
    least-loaded policy sees completions as well as arrivals.
    """

    def __init__(self, inner: SampleRequest, router: BackendRouter, backend: str) -> None:
        self._inner = inner
        self._router = router
        #: The backend (model/stage name) this request was routed to.
        self.backend = backend
        self._released = False
        self._release_lock = threading.Lock()

    @property
    def spec(self) -> RequestSpec:
        return self._inner.spec

    @property
    def latency(self) -> Optional[float]:
        return self._inner.latency

    def done(self) -> bool:
        return self._inner.done()

    def result(self, timeout: Optional[float] = None) -> Table:
        """Block for the table (see :meth:`SampleRequest.result`)."""
        try:
            return self._inner.result(timeout)
        finally:
            self._release_if_done()

    def cancel(self) -> bool:
        cancelled = self._inner.cancel()
        self._release_if_done()
        return cancelled

    def _release_if_done(self) -> None:
        if not self._inner.done():
            return  # timed out: the slot is still genuinely occupied
        with self._release_lock:
            if self._released:
                return
            self._released = True
        self._router.release(self.backend)


class FrontDoor:
    """Route requests across named sampling services; optionally speak HTTP.

    Parameters
    ----------
    services:
        Either one :class:`SamplingService` (registered as ``"default"``)
        or a mapping of backend name → service — registry stage names
        (``prod``, ``canary``) are the intended keys for multi-stage
        serving.
    broker:
        The placement policy for unpinned requests; defaults to
        :class:`~repro.scheduler.broker.LeastLoadedBroker`.

    The front door does not own its services' lifecycles by default:
    :meth:`close` stops the HTTP endpoint, and ``close(services=True)``
    additionally closes every backend service.
    """

    def __init__(
        self,
        services: Union[SamplingService, Mapping[str, SamplingService]],
        *,
        broker: Optional[Broker] = None,
    ) -> None:
        if isinstance(services, SamplingService):
            services = {"default": services}
        if not services:
            raise ValueError("FrontDoor requires at least one backend service")
        self._services: Dict[str, SamplingService] = dict(services)
        self._router = BackendRouter(
            {name: service.workers for name, service in self._services.items()},
            broker=broker,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- programmatic API --------------------------------------------------------
    @property
    def models(self) -> List[str]:
        """The routable backend names, in registration order."""
        return list(self._services)

    def service(self, model: str) -> SamplingService:
        """The backend service for ``model`` (KeyError on unknown names)."""
        try:
            return self._services[model]
        except KeyError:
            known = ", ".join(self._services)
            raise KeyError(f"unknown model {model!r}; serving: {known}") from None

    def submit(self, spec: RequestSpec, *, model: Optional[str] = None) -> FrontDoorTicket:
        """Route one request and queue it on its backend.

        Unpinned requests go to the least-loaded backend; ``model`` pins
        one.  Raises whatever the backend's admission control raises —
        routing happens first, so a rejected request's slot is released
        immediately.
        """
        if model is not None and model not in self._services:
            known = ", ".join(self._services)
            raise KeyError(f"unknown model {model!r}; serving: {known}")
        backend = self._router.acquire(
            rows=spec.n, project=spec.tenant, backend=model
        )
        try:
            inner = self._services[backend].submit(spec)
        except BaseException:
            self._router.release(backend)
            raise
        return FrontDoorTicket(inner, self._router, backend)

    def sample(self, spec: RequestSpec, *, model: Optional[str] = None) -> Table:
        """Synchronous convenience: route, wait, return the table."""
        return self.submit(spec, model=model).result()

    def stats(self) -> Dict[str, object]:
        """The unified stats tree: per-backend service stats + router load."""
        load = self._router.load()
        return {
            "models": {
                name: service.stats().to_dict()
                for name, service in self._services.items()
            },
            "router": {"in_flight": load},
        }

    def close(self, *, services: bool = False) -> None:
        """Stop the HTTP endpoint (and the backends, with ``services=True``)."""
        self.stop_http()
        if services:
            for service in self._services.values():
                service.close()

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the HTTP endpoint -------------------------------------------------------
    def start_http(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Serve HTTP on a background thread; returns the bound (host, port).

        ``port=0`` binds an ephemeral port (the test/CI-friendly default).
        """
        if self._server_thread is not None:
            raise RuntimeError("the HTTP endpoint is already running")
        ready = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(self._handle_connection, host, port)
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
                failure.append(exc)
                ready.set()
                loop.close()
                return
            self._server = server
            sock = server.sockets[0].getsockname()
            self.address = (sock[0], sock[1])
            ready.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._server_thread = threading.Thread(
            target=run, name="repro-serve-http", daemon=True
        )
        self._server_thread.start()
        ready.wait()
        if failure:
            self._server_thread.join()
            self._server_thread = None
            self._loop = None
            raise failure[0]
        assert self.address is not None
        return self.address

    def stop_http(self) -> None:
        """Stop the HTTP endpoint; idempotent, keeps backends serving."""
        thread = self._server_thread
        loop = self._loop
        if thread is None or loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join()
        self._server_thread = None
        self._server = None
        self._loop = None
        self.address = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One HTTP/1.1 exchange: parse, route, respond, close."""
        status, payload, extra = 500, {"error": "internal server error"}, {}
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return  # connection opened and dropped; nothing to answer
            method, path = parts[0].upper(), parts[1].split("?", 1)[0]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            body = await reader.readexactly(length) if length > 0 else b""
            status, payload, extra = await self._route(method, path, body)
        except Exception:
            pass  # fall through to the 500 defaults
        finally:
            with contextlib.suppress(Exception):
                # str payloads ship raw (the Prometheus text page); anything
                # else is JSON.
                if isinstance(payload, str):
                    data = payload.encode("utf-8")
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                else:
                    data = json.dumps(payload).encode("utf-8")
                    content_type = "application/json"
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    "Connection: close\r\n"
                )
                for name, value in extra.items():
                    head += f"{name}: {value}\r\n"
                writer.write(head.encode("latin-1") + b"\r\n" + data)
                await writer.drain()
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, object], str], Dict[str, str]]:
        if path == "/sample":
            if method != "POST":
                return 405, {"error": "POST only"}, {"Allow": "POST"}
            # The whole serve — JSON parse, admission, the blocking wait for
            # the table — runs on an executor thread; the event loop only
            # shuttles bytes.
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, self._sample_response, body)
        if method != "GET":
            return 405, {"error": "GET only"}, {"Allow": "GET"}
        if path == "/stats":
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(None, self.stats)
            return 200, stats, {}
        if path == "/metrics":
            loop = asyncio.get_running_loop()
            text = await loop.run_in_executor(None, self._metrics_page)
            return 200, text, {}
        if path == "/models":
            return (
                200,
                {
                    "models": {
                        name: {
                            "workers": service.workers,
                            "degraded": service.degraded,
                        }
                        for name, service in self._services.items()
                    }
                },
                {},
            )
        if path == "/healthz":
            return 200, {"status": "ok", "models": self.models}, {}
        return 404, {"error": f"no route for {path}"}, {}

    def _metrics_page(self) -> str:
        """The Prometheus text page over every backend's registry.

        Refreshing each service's stats first folds the point-in-time
        gauges (queue depth, workers, pool restarts) into the registries
        before rendering.
        """
        for service in self._services.values():
            service.stats()
        return render_prometheus_multi(
            {name: service.metrics for name, service in self._services.items()}
        )

    def _sample_response(self, body: bytes) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """The blocking half of ``POST /sample`` (runs on executor threads)."""
        try:
            raw = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(raw, dict):
                raise ValueError("request body must be a JSON object")
            model = raw.pop("model", None)
            fingerprint_only = bool(raw.pop("fingerprint_only", False))
            spec = RequestSpec.from_payload(raw)
        except (ValueError, TypeError, KeyError) as exc:
            return 400, {"error": str(exc)}, {}
        try:
            ticket = self.submit(spec, model=str(model) if model is not None else None)
            table = ticket.result()
        except AdmissionRejected as exc:
            return (
                429,
                {"error": str(exc), "reason": exc.reason, "retry_after": exc.retry_after},
                {"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
        except ServiceOverloaded as exc:
            return 429, {"error": str(exc), "reason": "overloaded"}, {"Retry-After": "1"}
        except KeyError as exc:
            return 400, {"error": str(exc)}, {}
        payload: Dict[str, object] = {
            "fingerprint": table_fingerprint(table),
            "rows": table.n_rows,
            "model": ticket.backend,
            "tenant": spec.tenant,
        }
        if not fingerprint_only:
            payload["columns"] = _columns_payload(table)
        return 200, payload, {}


def _columns_payload(table: Table) -> Dict[str, List[object]]:
    """JSON-ready columns: numerical as floats, categorical as strings."""
    columns: Dict[str, List[object]] = {}
    for name in table.schema.numerical:
        columns[name] = np.asarray(table[name], dtype=np.float64).tolist()
    for name in table.schema.categorical:
        columns[name] = np.asarray(table[name]).astype(str).tolist()
    return columns
