"""Deterministic fault injection for the serving worker pool.

Fault tolerance is only trustworthy if its failure paths are *testable*, and
failure paths are only testable if faults can be produced on demand,
deterministically, and exactly the intended number of times.  This module is
that harness: a picklable, seedable :class:`FaultPlan` describing faults to
inject into specific sampling chunks, installed inside every worker process
by the :mod:`repro.serve.sharded` worker initializer and consulted by the
chunk task right before it samples.

Three fault kinds cover the serving layer's failure surface:

``kill``
    The worker calls ``os._exit`` mid-chunk — the hard crash.  The whole
    pool is poisoned (``BrokenProcessPool``), which exercises supervision:
    executor rebuild, initializer re-run, resubmission of every queued
    chunk.
``delay``
    The worker sleeps ``value`` seconds before sampling — the straggler.
    Exercises per-chunk deadlines (timeout → resubmit) and hedging (a
    duplicate raced against the laggard, first result wins).
``fail``
    The worker raises :class:`InjectedFault` — the transient task error.
    Exercises the bounded per-chunk retry/backoff path.

Exactly-once across processes
-----------------------------
Every worker holds its own copy of the installed plan, so in-process
counters cannot implement "fail this chunk once": the retried chunk may land
on a different worker whose copy has not fired yet.  Instead each fault
carries a budget of ``times`` *tokens* claimed through atomic file creation
(``O_CREAT | O_EXCL``) in a shared ``token_dir`` — a cross-process
once-latch.  Whichever worker claims the token injects; every other
execution of the same chunk (the retry, the hedge, a resubmission after a
pool rebuild) runs clean.  That makes chaos runs *reproducible*: the same
plan over the same request injects the same faults, and — by the sharding
seed contract — recovery regenerates byte-identical output.

``FaultPlan.arm()`` clears the tokens so one plan can re-inject across
repeated runs (the fault benchmark re-arms per measured iteration).

The plan reaches workers through :class:`~repro.serve.sharded.ShardedSampler`
(``fault_plan=``), :class:`~repro.serve.service.SamplingService`
(``fault_plan=``) and ``repro-experiments serve --fault-plan "kill@1,..."``.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Fault", "FaultPlan", "InjectedFault", "active_plan", "install", "maybe_inject"]

#: Exit code used by ``kill`` faults (recognisable in worker post-mortems).
KILL_EXIT_CODE = 87

#: Fault kinds the plan understands.
FAULT_KINDS = ("kill", "delay", "fail")


class InjectedFault(RuntimeError):
    """The error raised in a worker by a ``fail`` fault."""


@dataclass(frozen=True)
class Fault:
    """One fault: ``kind`` injected into executions of chunk ``chunk``.

    ``value`` is the sleep duration for ``delay`` faults (ignored otherwise)
    and ``times`` is the cross-process injection budget — after ``times``
    claimed injections the fault is spent and the chunk runs clean.
    """

    kind: str
    chunk: int
    value: float = 0.0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use one of {FAULT_KINDS}")
        if self.chunk < 0:
            raise ValueError(f"fault chunk index must be non-negative, got {self.chunk}")
        if self.times < 1:
            raise ValueError(f"fault times must be at least 1, got {self.times}")
        if self.kind == "delay" and self.value <= 0:
            raise ValueError("delay faults need a positive value (seconds)")
        if self.kind != "delay" and self.value:
            raise ValueError(f"{self.kind} faults take no value")


#: Grammar of one ``FaultPlan.parse`` entry: ``kind@chunk[:value][*times]``.
_SPEC_ENTRY = re.compile(
    r"^(?P<kind>[a-z]+)@(?P<chunk>\d+)(?::(?P<value>[0-9.]+))?(?:\*(?P<times>\d+))?$"
)


class FaultPlan:
    """A deterministic, picklable set of :class:`Fault` injections.

    The plan is constructed in the parent process (so every worker shares
    one ``token_dir``) and shipped to workers through the pool initializer.
    It is deliberately *data*: pickling it re-targets the same token
    directory, keeping the exactly-once latch intact across executor
    rebuilds.
    """

    def __init__(self, faults: Sequence[Fault], *, token_dir: Optional[str] = None) -> None:
        self.faults: List[Fault] = list(faults)
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"FaultPlan takes Fault entries, got {type(fault).__name__}")
        if token_dir is None:
            token_dir = tempfile.mkdtemp(prefix="repro-fault-plan-")
        self.token_dir = str(token_dir)
        os.makedirs(self.token_dir, exist_ok=True)

    # -- construction ------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, *, token_dir: Optional[str] = None) -> "FaultPlan":
        """Parse a CLI spec: comma-separated ``kind@chunk[:value][*times]``.

        Examples: ``"kill@1"`` (kill the worker sampling chunk 1, once),
        ``"delay@3:0.25"`` (sleep 250 ms before chunk 3),
        ``"fail@0*2"`` (fail chunk 0 twice before letting it through).
        """
        faults = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            match = _SPEC_ENTRY.match(entry)
            if match is None:
                raise ValueError(
                    f"bad fault spec {entry!r}; expected kind@chunk[:value][*times] "
                    f"with kind in {FAULT_KINDS}"
                )
            faults.append(
                Fault(
                    kind=match.group("kind"),
                    chunk=int(match.group("chunk")),
                    value=float(match.group("value") or 0.0),
                    times=int(match.group("times") or 1),
                )
            )
        if not faults:
            raise ValueError(f"fault spec {spec!r} contains no faults")
        return cls(faults, token_dir=token_dir)

    @classmethod
    def random(
        cls,
        n_chunks: int,
        *,
        n_faults: int = 1,
        kinds: Sequence[str] = FAULT_KINDS,
        delay: float = 0.2,
        seed: int = 0,
        token_dir: Optional[str] = None,
    ) -> "FaultPlan":
        """A seed-deterministic plan: ``n_faults`` draws over the chunk range.

        The same ``(n_chunks, n_faults, kinds, seed)`` always yields the same
        plan — randomised chaos runs stay replayable.
        """
        if n_chunks < 1:
            raise ValueError("n_chunks must be at least 1")
        rng = np.random.default_rng(seed)
        faults = []
        for _ in range(n_faults):
            kind = str(rng.choice(list(kinds)))
            faults.append(
                Fault(
                    kind=kind,
                    chunk=int(rng.integers(0, n_chunks)),
                    value=delay if kind == "delay" else 0.0,
                )
            )
        return cls(faults, token_dir=token_dir)

    # -- lifecycle ---------------------------------------------------------------
    def arm(self) -> "FaultPlan":
        """Reset the exactly-once latches so the plan injects afresh."""
        if os.path.isdir(self.token_dir):
            for name in os.listdir(self.token_dir):
                if name.endswith(".token"):
                    try:
                        os.unlink(os.path.join(self.token_dir, name))
                    except OSError:  # pragma: no cover - racing cleanup
                        pass
        else:  # pragma: no cover - externally removed scratch dir
            os.makedirs(self.token_dir, exist_ok=True)
        return self

    def disarm(self) -> "FaultPlan":
        """Claim every remaining token so nothing injects until :meth:`arm`.

        The scenario engine installs a plan at pool start but only wants it
        firing at scheduled ticks: disarm right after construction, then
        ``arm()`` at each scheduled tick.
        """
        for fault_index, fault in enumerate(self.faults):
            while self._claim(fault_index, fault.times):
                pass
        return self

    def cleanup(self) -> None:
        """Remove the token directory (plans made from parse/random own one)."""
        shutil.rmtree(self.token_dir, ignore_errors=True)

    def spent(self) -> int:
        """Number of injections claimed so far (across all processes)."""
        if not os.path.isdir(self.token_dir):  # pragma: no cover - removed dir
            return 0
        return sum(1 for name in os.listdir(self.token_dir) if name.endswith(".token"))

    # -- injection (worker side) -------------------------------------------------
    def _claim(self, fault_index: int, times: int) -> bool:
        """Atomically claim one of the fault's ``times`` tokens, if any remain."""
        for occurrence in range(times):
            path = os.path.join(self.token_dir, f"{fault_index}.{occurrence}.token")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            return True
        return False

    def inject(self, chunk_index: int) -> None:
        """Perform whatever faults target ``chunk_index`` and still have budget."""
        for fault_index, fault in enumerate(self.faults):
            if fault.chunk != chunk_index:
                continue
            if not self._claim(fault_index, fault.times):
                continue
            if fault.kind == "delay":
                time.sleep(fault.value)
            elif fault.kind == "fail":
                raise InjectedFault(
                    f"injected failure for chunk {chunk_index} (fault #{fault_index})"
                )
            elif fault.kind == "kill":
                os._exit(KILL_EXIT_CODE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        entries = ", ".join(
            f"{f.kind}@{f.chunk}" + (f":{f.value}" if f.kind == "delay" else "")
            + (f"*{f.times}" if f.times != 1 else "")
            for f in self.faults
        )
        return f"FaultPlan([{entries}])"


#: The plan installed in *this* process (a worker, normally), if any.
_ACTIVE_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as this process's active plan (``None`` uninstalls)."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE_PLAN


def maybe_inject(chunk_index: int) -> None:
    """Hook for worker tasks: inject the active plan's faults for this chunk."""
    if _ACTIVE_PLAN is not None:
        _ACTIVE_PLAN.inject(chunk_index)
