"""Shared-memory chunk transport for the sharded serving engine.

The wire format
---------------
A chunk crossing the worker pool is **codes only**: one named
:mod:`multiprocessing.shared_memory` segment holding the chunk's column
buffers back to back in schema order — ``float64`` (8 bytes/row) for each
numerical column, ``int32`` dictionary codes (4 bytes/row) for each
categorical column.  No strings and no pickled table ever cross the pipe;
what *is* pickled per chunk is a tiny :class:`ChunkEnvelope` (segment name
+ row count).  The categorical vocabularies travel **once** with the model
snapshot: both sides derive the identical :class:`ChunkLayout` (schema +
per-column vocab) from their own copy of the fitted model, so the parent
can rebuild :class:`~repro.tabular.table.CategoricalColumn` views without
any per-chunk metadata.

Reassembly is zero-copy: the parent maps the segment and builds
``np.frombuffer`` views straight over it; the mapping is pinned to the
reassembled :class:`~repro.tabular.table.Table` (a ``weakref.finalize``
closes it when the table is collected) and the segment *name* is unlinked
immediately on reassembly, so the memory disappears with its last mapping.

Segment lifecycle
-----------------
Lifecycle is owned here, not by the interpreter's ``resource_tracker``
(Python ≥3.8 registers on create *and* attach): the worker unregisters
the segment it created (it never unlinks — the parent does), while the
attaching side lets ``unlink()`` balance its own registration — an extra
explicit unregister would reach the tracker daemon twice and make it
print ``KeyError`` tracebacks:

* the worker creates the segment, drops a token file in the transport's
  spool directory, copies the buffers, and closes its mapping;
* the parent attaches, unlinks, removes the token — the normal path;
* envelopes that are never decoded (timed-out attempts, hedge losers,
  cancelled chunks) are discarded via :meth:`ChunkDecoder.discard` once
  their future resolves (the sampler keeps a reap list);
* anything left behind by a worker crash is caught by
  :meth:`ChunkDecoder.sweep` — every token names a segment, so the spool
  directory is a complete registry of not-yet-consumed segments — run on
  sampler close/restart/swap.

``tests/test_serve_shm.py`` drives kills, timeouts and hedge losers
through this and asserts the spool and ``/dev/shm`` end empty.

Platforms without a working ``multiprocessing.shared_memory`` fall back to
the plain-pickle transport transparently (see :func:`resolve_transport`;
``REPRO_SHM=shm|pickle`` forces either).
"""

from __future__ import annotations

import os
import secrets
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.models.base import Surrogate
from repro.obs.metrics import MetricsRegistry
from repro.tabular.schema import TableSchema
from repro.tabular.table import CODES_DTYPE, CategoricalColumn, Table
from repro.utils.logging import get_logger

try:  # pragma: no cover - import always succeeds on supported platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "ChunkDecoder",
    "ChunkEncoder",
    "ChunkEnvelope",
    "ChunkLayout",
    "ShmSession",
    "ShmTransportConfig",
    "TRANSPORT_ENV",
    "resolve_transport",
    "shm_available",
]

_LOG = get_logger(__name__)

#: Environment toggle: ``shm``/``1`` forces the shared-memory transport,
#: ``pickle``/``0`` disables it, unset/``auto`` uses shm where available.
TRANSPORT_ENV = "REPRO_SHM"

#: Prefix of every segment name this transport creates.
SEGMENT_PREFIX = "repro_shm_"

_NUMERICAL_ITEMSIZE = 8  # float64
_CATEGORICAL_ITEMSIZE = 4  # int32 codes

_availability: Optional[bool] = None


def shm_available() -> bool:
    """True when named shared-memory segments actually work here (cached)."""
    global _availability
    if _availability is None:
        if shared_memory is None:
            _availability = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()  # unlink() also unregisters the create-side registration
                _availability = True
            except (OSError, ValueError):
                _availability = False
    return _availability


def resolve_transport(requested: Optional[str] = None) -> str:
    """Resolve a transport request to ``"shm"`` or ``"pickle"``.

    ``requested`` wins over the ``REPRO_SHM`` environment variable; both
    accept ``shm``/``1``/``on``, ``pickle``/``0``/``off`` and ``auto``.
    Forcing shm on a platform without it is an error; ``auto`` falls back.
    """
    value = requested if requested is not None else os.environ.get(TRANSPORT_ENV, "auto")
    value = str(value).strip().lower()
    if value in ("shm", "1", "on", "true"):
        if not shm_available():
            raise RuntimeError(
                "shared-memory transport forced on, but multiprocessing.shared_memory "
                "is unavailable on this platform"
            )
        return "shm"
    if value in ("pickle", "0", "off", "false"):
        return "pickle"
    if value in ("auto", ""):
        return "shm" if shm_available() else "pickle"
    raise ValueError(
        f"unknown transport {value!r}; use 'shm', 'pickle' or 'auto'"
    )


def _untrack(name: str) -> None:
    """Remove a segment from the resource tracker — this module owns cleanup.

    Python registers segments with the tracker on create *and* attach; left
    registered, the tracker would double-unlink (and warn about) segments
    whose lifecycle the transport already manages.  Only call this where
    ``unlink()`` will NOT run in the same process: ``unlink()`` already
    unregisters, and a second UNREGISTER message makes the (fork-shared)
    tracker daemon print a ``KeyError`` traceback to stderr.
    """
    if resource_tracker is None:  # pragma: no cover - exotic platforms only
        return
    try:
        resource_tracker.unregister("/" + name if not name.startswith("/") else name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift tolerance
        pass


@dataclass(frozen=True)
class ShmTransportConfig:
    """Picklable worker-side transport configuration (ships via initargs)."""

    spool_dir: str


@dataclass
class ChunkEnvelope:
    """What actually crosses the pool pipe for one chunk.

    Either a segment reference (the shm path) or an inline table (the
    defensive fallback when a chunk's layout unexpectedly diverges from the
    snapshot-derived one).  ``consumed`` is parent-side bookkeeping only.
    """

    segment: Optional[str]
    n_rows: int = 0
    nbytes: int = 0
    inline: Optional[Table] = None
    consumed: bool = field(default=False, compare=False)


class ChunkLayout:
    """The per-column wire layout both sides derive from the model snapshot.

    Column order and kinds come from the schema; each categorical column
    carries the full vocabulary its codes index.  Derived from a zero-row
    exact-mode sample, whose decode paths emit full-vocabulary
    :class:`CategoricalColumn` objects — so the layout costs no real
    sampling and is identical on every holder of the same snapshot.
    """

    def __init__(self, schema: TableSchema, vocabs: Dict[str, Tuple[str, ...]]):
        self.schema = schema
        self.vocabs = vocabs
        self.categorical = set(schema.categorical)

    @classmethod
    def from_model(cls, model: Surrogate) -> "ChunkLayout":
        reference = model.sample(0, seed=0, sampling_mode="exact")
        vocabs = {
            name: reference.vocab(name) for name in reference.schema.categorical
        }
        return cls(reference.schema, vocabs)

    def matches(self, table: Table) -> bool:
        if table.schema != self.schema:
            return False
        return all(
            table.vocab(name) == self.vocabs[name] for name in self.schema.categorical
        )

    def chunk_nbytes(self, n_rows: int) -> int:
        per_row = 0
        for col in self.schema:
            if col.name in self.categorical:
                per_row += _CATEGORICAL_ITEMSIZE
            else:
                per_row += _NUMERICAL_ITEMSIZE
        return per_row * n_rows


class ChunkEncoder:
    """Worker-side: serialise chunk tables into shared-memory segments."""

    def __init__(self, config: ShmTransportConfig, model: Surrogate) -> None:
        self.spool_dir = config.spool_dir
        self.layout = ChunkLayout.from_model(model)

    def encode(self, table: Table) -> ChunkEnvelope:
        """Write one chunk into a fresh segment; returns its envelope.

        A chunk that does not match the snapshot-derived layout (cannot
        happen under the seed contract, but cheap to guard) ships inline as
        a pickled table instead of corrupting the wire format.
        """
        if not self.layout.matches(table):
            _LOG.warning(
                "chunk layout diverged from the snapshot-derived wire layout "
                "(%d rows); shipping inline as a pickled table", len(table),
            )
            return ChunkEnvelope(segment=None, n_rows=len(table), inline=table)
        n = len(table)
        total = self.layout.chunk_nbytes(n)
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(8)}"
        # Token first: a crash at any later point leaves token + (maybe)
        # segment, and the sweep handles both halves.
        self._write_token(name)
        segment = shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
        _untrack(segment.name)
        try:
            self._copy_columns(segment, table, n)
        finally:
            segment.close()
        return ChunkEnvelope(segment=name, n_rows=n, nbytes=total)

    def _copy_columns(self, segment, table: Table, n: int) -> None:
        # Views over segment.buf live only inside this frame: they must all
        # be gone before close(), or the mmap refuses to unmap.
        offset = 0
        for col in self.layout.schema:
            if col.name in self.layout.categorical:
                src = np.ascontiguousarray(table.codes(col.name), dtype=CODES_DTYPE)
                view = np.frombuffer(segment.buf, dtype=CODES_DTYPE, count=n, offset=offset)
                offset += n * _CATEGORICAL_ITEMSIZE
            else:
                src = np.ascontiguousarray(table[col.name], dtype=np.float64)
                view = np.frombuffer(segment.buf, dtype=np.float64, count=n, offset=offset)
                offset += n * _NUMERICAL_ITEMSIZE
            view[:] = src
            del view

    def _write_token(self, name: str) -> None:
        with open(os.path.join(self.spool_dir, name), "x"):
            pass


class ChunkDecoder:
    """Parent-side: reassemble tables from segments and own their lifecycle.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, the
    decoder accounts the transport on ``repro_serve_shm_*`` series:
    chunks/bytes decoded, envelopes discarded, sweep passes and swept
    segments.
    """

    def __init__(
        self, layout: ChunkLayout, spool_dir: str, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.layout = layout
        self.spool_dir = spool_dir
        registry = metrics if metrics is not None else MetricsRegistry()
        self._m_chunks = registry.counter(
            "repro_serve_shm_chunks_total", "Chunk envelopes decoded from shared memory."
        )
        self._m_bytes = registry.counter(
            "repro_serve_shm_bytes_total", "Segment bytes decoded from shared memory."
        )
        self._m_discarded = registry.counter(
            "repro_serve_shm_discarded_total",
            "Never-decoded envelopes released (timeouts, hedge losers, cancels).",
        )
        self._m_sweeps = registry.counter(
            "repro_serve_shm_sweeps_total", "Spool-directory sweep passes."
        )
        self._m_swept = registry.counter(
            "repro_serve_shm_swept_segments_total",
            "Leaked segments collected by spool sweeps (crash leftovers).",
        )

    def decode(self, envelope: ChunkEnvelope) -> Table:
        """Zero-copy reassembly: column views straight over the mapping.

        The segment name is unlinked immediately — the mapping stays valid
        until the returned table is garbage collected (a finalizer closes
        it), after which the memory is gone.
        """
        if envelope.segment is None:
            assert envelope.inline is not None
            return envelope.inline
        self._m_chunks.inc()
        self._m_bytes.inc(envelope.nbytes)
        segment = shared_memory.SharedMemory(name=envelope.segment)
        try:
            segment.unlink()  # also balances the attach-side tracker registration
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            _untrack(envelope.segment)
        self._remove_token(envelope.segment)
        envelope.consumed = True
        n = envelope.n_rows
        data: Dict[str, object] = {}
        offset = 0
        for col in self.layout.schema:
            if col.name in self.layout.categorical:
                codes = np.frombuffer(segment.buf, dtype=CODES_DTYPE, count=n, offset=offset)
                data[col.name] = CategoricalColumn(codes, self.layout.vocabs[col.name])
                offset += n * _CATEGORICAL_ITEMSIZE
            else:
                data[col.name] = np.frombuffer(
                    segment.buf, dtype=np.float64, count=n, offset=offset
                )
                offset += n * _NUMERICAL_ITEMSIZE
        table = Table(data, self.layout.schema)
        _pin_mapping(table, segment)
        return table

    def discard(self, envelope: ChunkEnvelope) -> None:
        """Release a never-decoded envelope's segment (hedge loser, timeout)."""
        if envelope is None or envelope.segment is None or envelope.consumed:
            return
        envelope.consumed = True
        self._m_discarded.inc()
        _LOG.debug(
            "discarding never-decoded envelope (segment %s, %d rows)",
            envelope.segment, envelope.n_rows,
        )
        self._unlink_segment(envelope.segment)
        self._remove_token(envelope.segment)

    def sweep(self) -> int:
        """Unlink every segment still spooled (crash leftovers); returns count."""
        removed = 0
        self._m_sweeps.inc()
        try:
            tokens = os.listdir(self.spool_dir)
        except FileNotFoundError:
            return 0
        for name in tokens:
            if self._unlink_segment(name):
                removed += 1
            self._remove_token(name)
        if removed:
            self._m_swept.inc(removed)
            _LOG.warning(
                "spool sweep of %s collected %d leaked segment(s) (worker crash leftovers)",
                self.spool_dir, removed,
            )
        return removed

    def close(self) -> int:
        """Final sweep, then remove the spool directory."""
        removed = self.sweep()
        try:
            os.rmdir(self.spool_dir)
        except OSError:  # pragma: no cover - non-empty/already gone
            pass
        return removed

    @staticmethod
    def _unlink_segment(name: str) -> bool:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        segment.close()
        try:
            segment.unlink()  # also balances the attach-side tracker registration
        except FileNotFoundError:  # pragma: no cover - lost the race
            _untrack(name)
            return False
        return True

    def _remove_token(self, name: str) -> None:
        try:
            os.unlink(os.path.join(self.spool_dir, name))
        except FileNotFoundError:
            pass


def _safe_close(segment) -> None:
    """Close a mapping that column views may still borrow.

    At table finalization the table's column views are still alive (the
    finalizer runs before the attribute dict is torn down), so ``close()``
    can refuse with ``BufferError``.  In that case release the descriptor
    ourselves and let the last view's collection unmap the memory — the
    segment name was already unlinked at decode, so nothing leaks either
    way.
    """
    try:
        segment.close()
    except BufferError:
        fd = getattr(segment, "_fd", -1)
        if isinstance(fd, int) and fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed elsewhere
                pass
            segment._fd = -1


def _pin_mapping(table: Table, segment) -> None:
    """Keep the segment mapped for the table's lifetime, then close it."""
    import weakref

    table._shm_segment = segment  # the views borrow this mapping's buffer
    weakref.finalize(table, _safe_close, segment)


class ShmSession:
    """Parent-side transport state for one pool generation.

    Owns the spool directory, the worker-facing config, and the decoder.
    One session per :meth:`ShardedSampler.start`; ``close()`` sweeps and
    removes the spool.
    """

    def __init__(self, model: Surrogate, metrics: Optional[MetricsRegistry] = None) -> None:
        self.spool_dir = tempfile.mkdtemp(prefix="repro-shm-")
        self.config = ShmTransportConfig(spool_dir=self.spool_dir)
        self.decoder = ChunkDecoder(
            ChunkLayout.from_model(model), self.spool_dir, metrics=metrics
        )

    def close(self) -> int:
        return self.decoder.close()
