"""The unified serving request contract: one spec for every entry point.

Every way into the serving stack — :meth:`SamplingService.submit`,
:meth:`SamplingService.sample`, :meth:`ShardedSampler.sample`, the HTTP
front door and both CLIs — accepts the same frozen :class:`RequestSpec`.
The spec carries everything a multi-tenant request needs:

``n`` / ``seed`` / ``sampling_mode``
    What to generate: the row count, the request's own seed (the sharding
    contract derives every chunk stream from it, so results are
    worker-count-invariant), and ``"exact"`` (bit-reproducible) or
    ``"fast"`` (distribution-identical serving mode).
``tenant``
    The fairness principal.  The dispatcher's weighted fair queue
    schedules across ``(tenant, priority)`` flows, so one tenant's burst
    cannot starve another's steady trickle.
``priority``
    One of the :data:`PRIORITY_CLASSES` (``interactive`` > ``normal`` >
    ``batch``).  The class weight sets the tenant flow's share of service
    capacity; it never affects the request's *bytes*.
``deadline``
    Optional SLO in seconds.  Admission control rejects a request whose
    estimated queue wait already exceeds its deadline
    (:class:`~repro.serve.admission.AdmissionRejected`, HTTP 429) — once
    admitted, a request is always served, which is what keeps scenario
    replays deterministic.

:func:`table_fingerprint` is the byte contract the serving layer is judged
by: a SHA-256 over a table's schema and exact cell bytes, shared by the
scenario reports, the HTTP ``fingerprint_only`` responses and the CI
front-door smoke.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.models.base import SAMPLING_MODES
from repro.tabular.table import Table
from repro.utils.rng import SeedLike, spawn_seed_sequences

__all__ = [
    "PRIORITY_CLASSES",
    "PriorityClass",
    "RequestSpec",
    "priority_weight",
    "table_fingerprint",
]


@dataclass(frozen=True)
class PriorityClass:
    """One service class: its fair-queueing weight and SLO intent."""

    name: str
    #: Relative share of dispatcher capacity a flow of this class receives
    #: when competing (weighted fair queueing: cost = rows / weight).
    weight: int
    description: str


#: The three service classes, highest priority first.  Weights are the fair
#: shares: an ``interactive`` flow advances 4 rows for every 1 a ``batch``
#: flow advances when both are backlogged.
PRIORITY_CLASSES: Dict[str, PriorityClass] = {
    "interactive": PriorityClass(
        "interactive", 4, "latency-sensitive callers (dashboards, notebooks)"
    ),
    "normal": PriorityClass("normal", 2, "the default service class"),
    "batch": PriorityClass("batch", 1, "throughput-oriented bulk exports"),
}


def priority_weight(priority: str) -> int:
    """The fair-queueing weight of a priority class (KeyError on unknown)."""
    try:
        return PRIORITY_CLASSES[priority].weight
    except KeyError:
        known = ", ".join(PRIORITY_CLASSES)
        raise KeyError(f"unknown priority {priority!r}; use one of: {known}") from None


@dataclass(frozen=True)
class RequestSpec:
    """One sampling request, as every serving entry point understands it."""

    n: int
    seed: SeedLike = None
    sampling_mode: str = "fast"
    tenant: str = "default"
    priority: str = "normal"
    #: Optional SLO (seconds from submission): admission control rejects the
    #: request up front when its estimated wait already blows the deadline.
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"cannot sample a negative number of rows ({self.n})")
        if self.sampling_mode not in SAMPLING_MODES:
            raise ValueError(
                f"unknown sampling mode {self.sampling_mode!r}; "
                f"use one of {SAMPLING_MODES}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValueError(f"tenant must be a non-empty string, got {self.tenant!r}")
        if self.priority not in PRIORITY_CLASSES:
            known = ", ".join(PRIORITY_CLASSES)
            raise ValueError(
                f"unknown priority {self.priority!r}; use one of: {known}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive or None, got {self.deadline}")
        # Reject un-spawnable seeds at construction, in the caller's frame —
        # the dispatcher derives the chunk streams from this seed later, and
        # a bad one must not surface there.
        spawn_seed_sequences(self.seed, 0)

    @property
    def weight(self) -> int:
        """The request's fair-queueing weight (from its priority class)."""
        return PRIORITY_CLASSES[self.priority].weight

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (non-scalar seeds render as their repr)."""
        seed: object = self.seed
        if seed is not None and not isinstance(seed, int):
            seed = int(seed) if isinstance(seed, np.integer) else repr(seed)
        return {
            "n": self.n,
            "seed": seed,
            "sampling_mode": self.sampling_mode,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline": self.deadline,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "RequestSpec":
        """Build a spec from a JSON-ish mapping (the HTTP/CLI parse path).

        Accepts exactly the dataclass field names (plus ``rows`` as an alias
        for ``n``); unknown keys raise ``ValueError`` so a typo'd knob fails
        loudly instead of silently serving defaults.
        """
        fields = {"n", "seed", "sampling_mode", "tenant", "priority", "deadline"}
        data = dict(payload)
        if "rows" in data and "n" not in data:
            data["n"] = data.pop("rows")
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(
                f"unknown request field(s) {unknown}; known fields: {sorted(fields)} (or 'rows')"
            )
        if "n" not in data:
            raise ValueError("request needs 'n' (or 'rows'): the row count")
        kwargs: Dict[str, object] = {"n": int(data["n"])}  # type: ignore[arg-type]
        if data.get("seed") is not None:
            kwargs["seed"] = int(data["seed"])  # type: ignore[arg-type]
        for key in ("sampling_mode", "tenant", "priority"):
            if data.get(key) is not None:
                kwargs[key] = str(data[key])
        if data.get("deadline") is not None:
            kwargs["deadline"] = float(data["deadline"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


def table_fingerprint(table: Table, state: Optional["hashlib._Hash"] = None) -> str:
    """SHA-256 over a table's schema and exact column bytes.

    Numerical columns hash their float64 buffer (bit-exact), categorical
    columns their NUL-joined string values — so two tables fingerprint
    equal iff they are byte-identical in every cell.  Passing a running
    ``state`` folds the table into an existing digest (the scenario engine
    streams every served request through one hash).
    """
    own = state is None
    h = hashlib.sha256() if own else state
    schema = table.schema
    h.update(("|".join(schema.names) + f"#{table.n_rows}").encode("utf-8"))
    for name in schema.numerical:
        h.update(name.encode("utf-8"))
        h.update(np.ascontiguousarray(np.asarray(table[name], dtype=np.float64)).tobytes())
    for name in schema.categorical:
        h.update(name.encode("utf-8"))
        h.update("\x00".join(np.asarray(table[name]).astype(str).tolist()).encode("utf-8"))
    return h.hexdigest() if own else ""
