"""The sampling service: a micro-batching request queue over the sharded engine.

Serving traffic is many concurrent, mostly small requests, not one giant
one.  :class:`SamplingService` accepts requests from any thread
(:meth:`~SamplingService.submit` returns a :class:`SampleRequest` handle),
and a dispatcher thread drains the queue in *micro-batches*: every request
queued at the moment the dispatcher wakes is coalesced into one sharded pass
— all requests' chunks are submitted to the worker pool together, so the
pool pipelines across request boundaries instead of draining and refilling
per request.

Micro-batching is invisible in the bytes: each request's chunks draw from
the request's **own** seed's chunk streams (the sharding contract of
:mod:`repro.serve.sharded`), so a coalesced request returns exactly what it
would have returned alone — proven in ``tests/test_serve_service.py``.  What
coalescing changes is latency/throughput: queued small requests share one
pool pass instead of waiting for ``k`` sequential ones.

Backpressure is a bounded in-flight budget (rows admitted but not yet
delivered): :meth:`submit` blocks — or raises :class:`ServiceOverloaded`
with ``wait=False`` — until the budget has room, so a burst of producers
cannot queue unbounded work.  A caller that stops waiting on a request
(e.g. its ``result(timeout=...)`` expired) should :meth:`SampleRequest.cancel`
it: cancellation removes the request from the queue when still possible,
resolves the handle with :class:`CancelledError`, and — crucially —
releases the request's backpressure budget exactly once, so an abandoned
request cannot consume admission capacity forever.

Fault tolerance: chunk failures, timeouts and stragglers are absorbed by the
sharded engine's :class:`~repro.serve.sharded.ChunkPolicy` (retry / deadline
/ hedging; see that module's fault-tolerance contract), and worker death is
absorbed by pool supervision.  When the pool itself is beyond saving
(:class:`~repro.utils.parallel.WorkerPoolBroken` — restart budget exhausted)
the dispatcher *degrades instead of erroring*: the affected micro-batch (and
every batch after it, until the service is rebuilt) is generated serially
in-process — byte-identical output by the seed contract, slower, but zero
queued requests are lost.  :meth:`stats` reports throughput (rows/s), queue
depth, p50/p95 request latency, and the fault-path counters
(pool restarts, chunk retries/timeouts, hedges and hedge wins, degraded
passes, cancellations).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor, CancelledError
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.models.base import SAMPLING_MODES, Surrogate
from repro.serve.faults import FaultPlan
from repro.serve.sharded import ChunkPolicy, ShardedSampler
from repro.tabular.table import Table
from repro.utils.parallel import WorkerPoolBroken
from repro.utils.rng import SeedLike, spawn_seed_sequences

__all__ = ["SampleRequest", "SamplingService", "ServiceOverloaded", "ServiceStats"]


class _SwapTicket:
    """One pending hot-swap: the new model plus a completion event."""

    def __init__(self, model: Surrogate) -> None:
        self.model = model
        self.done = threading.Event()
        self.error: Optional[BaseException] = None

    def resolve(self, error: Optional[BaseException]) -> None:
        self.error = error
        self.done.set()


class ServiceOverloaded(RuntimeError):
    """Raised by non-blocking submission when the in-flight budget is full."""


class SampleRequest:
    """Handle for one submitted request; resolves to a :class:`Table`."""

    def __init__(self, n: int, seed: SeedLike, sampling_mode: str) -> None:
        self.n = n
        self.seed = seed
        self.sampling_mode = sampling_mode
        self.submitted_at = time.perf_counter()
        self._done = threading.Event()
        self._result: Optional[Table] = None
        self._error: Optional[BaseException] = None
        self.latency: Optional[float] = None
        self.cancelled = False
        self._budget_released = False
        self._service: Optional["SamplingService"] = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Table:
        """Block until the request is served; returns the sampled table.

        A caller that gives up after a timeout should follow with
        :meth:`cancel` — otherwise the admitted rows keep occupying the
        service's backpressure budget until the dispatcher reaches the
        request.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request of {self.n} rows not served within {timeout}s "
                "(cancel() it to release its admission budget)"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        """Abandon the request, releasing its backpressure budget.

        Returns ``True`` when the request was cancelled (it resolves
        immediately; :meth:`result` raises :class:`CancelledError`), and
        ``False`` when it had already completed.  A request the dispatcher
        is currently generating cannot be un-generated: its handle still
        resolves as cancelled right away, the budget is still released, and
        the eventually produced table is discarded.
        """
        service = self._service
        if service is None:
            return False
        return service._cancel_request(self)

    def _resolve(
        self, result: Optional[Table], error: Optional[BaseException]
    ) -> bool:
        """Deliver an outcome once; late outcomes are discarded (→ False)."""
        if self._done.is_set():
            return False
        self.latency = time.perf_counter() - self.submitted_at
        self._result = result
        self._error = error
        self._done.set()
        return True


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time view of service health."""

    #: Rows delivered per second of service uptime.
    rows_per_second: float
    #: Requests waiting for the dispatcher (not yet in a sharded pass).
    queue_depth: int
    #: Rows admitted but not yet delivered (the backpressure quantity).
    in_flight_rows: int
    #: Median / 95th-percentile request latency over the sliding window (s).
    p50_latency: float
    p95_latency: float
    total_requests: int
    total_rows: int
    uptime: float
    #: Supervised worker-pool rebuilds after worker death.
    pool_restarts: int = 0
    #: Chunk resubmissions after task failures or deadline expiries.
    chunk_retries: int = 0
    #: Chunk attempts abandoned at their per-chunk deadline.
    chunk_timeouts: int = 0
    #: Straggler duplicates submitted / duplicates that beat their primary.
    hedges: int = 0
    hedge_wins: int = 0
    #: Requests served by the in-process fallback after pool collapse.
    degraded_passes: int = 0
    #: Requests abandoned via :meth:`SampleRequest.cancel`.
    cancelled_requests: int = 0


class SamplingService:
    """Serve sampling requests from a fitted surrogate (or a registry entry).

    Parameters
    ----------
    model:
        The fitted surrogate to serve.
    workers / chunk_size:
        Forwarded to the underlying :class:`ShardedSampler`.
    max_inflight_rows:
        The backpressure budget: total rows admitted-but-undelivered before
        :meth:`submit` blocks.  A request larger than the whole budget is
        admitted when the service is otherwise idle (it would never fit
        alongside other work, but must not deadlock alone).
    latency_window:
        Number of recent request latencies kept for the p50/p95 stats.
    chunk_policy / fault_plan / max_pool_restarts:
        Forwarded to the sharded engine: the per-chunk resilience policy,
        an optional deterministic fault-injection plan (chaos runs), and the
        pool supervision restart budget.

    The service starts its pool and dispatcher on construction and is a
    context manager; :meth:`close` drains the queue and shuts down.
    """

    def __init__(
        self,
        model: Surrogate,
        *,
        workers: Optional[int] = None,
        chunk_size: int = ShardedSampler.DEFAULT_CHUNK_SIZE,
        max_inflight_rows: int = 4_000_000,
        latency_window: int = 512,
        chunk_policy: Optional[ChunkPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_pool_restarts: int = 5,
    ) -> None:
        if max_inflight_rows < 1:
            raise ValueError(f"max_inflight_rows must be positive, got {max_inflight_rows}")
        self._sampler = ShardedSampler(
            model,
            workers=workers,
            chunk_size=chunk_size,
            chunk_policy=chunk_policy,
            fault_plan=fault_plan,
            max_pool_restarts=max_pool_restarts,
        )
        self.max_inflight_rows = int(max_inflight_rows)
        self._lock = threading.Condition()
        self._queue: Deque[SampleRequest] = deque()
        self._in_flight_rows = 0
        # FIFO admission tickets: submitters are admitted strictly in
        # arrival order, so an oversized request (admissible only when the
        # service drains) cannot be starved by a stream of small requests
        # slipping past it every time the budget frees up.  The deque holds
        # the tickets still waiting; only its front may admit.
        self._ticket_counter = 0
        self._admission_waiters: Deque[int] = deque()
        self._pending_swaps: Deque[_SwapTicket] = deque()
        self._model_swaps = 0
        self._closing = False
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._total_requests = 0
        self._total_rows = 0
        self._degraded_passes = 0
        self._cancelled_requests = 0
        self._started_at = time.perf_counter()
        # Spawn the worker pool *before* the dispatcher thread exists: the
        # pool forks at start on platforms where fork is the default, and
        # forking a multi-threaded process is where the trouble lives.
        self._sampler.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- client API --------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._sampler.workers

    @property
    def chunk_size(self) -> int:
        return self._sampler.chunk_size

    @property
    def degraded(self) -> bool:
        """True once the pool collapsed and the service runs in-process."""
        return self._sampler.pool_broken

    @property
    def model(self) -> Surrogate:
        """The surrogate currently being served."""
        return self._sampler.model

    @property
    def model_swaps(self) -> int:
        """Hot model swaps applied since the service started."""
        return self._model_swaps

    def swap_model(
        self, model: Surrogate, *, wait: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Hot-swap the served model with **zero lost requests**.

        The swap is queued to the dispatcher, which applies it at the safe
        point between micro-batches: requests already submitted keep their
        admission slots and are served (by whichever model the dispatcher
        holds when their batch runs — submit-then-swap ordering is only
        deterministic across a drained queue, which is how the scenario
        engine drives it), and the worker pool is rebuilt from the new
        model's snapshot.  With ``wait=True`` (default) blocks until the
        swap has been applied; raises the swap's error if the rebuild fails.
        """
        if not model.is_fitted:
            raise RuntimeError(
                f"{type(model).__name__} is not fitted; fit() it before serving"
            )
        ticket = _SwapTicket(model)
        with self._lock:
            if self._closing:
                raise RuntimeError("service is closed")
            self._pending_swaps.append(ticket)
            self._lock.notify_all()  # wake an idle dispatcher
        if wait:
            if not ticket.done.wait(timeout):
                raise TimeoutError(f"model swap not applied within {timeout}s")
            if ticket.error is not None:
                raise ticket.error

    def submit(
        self,
        n: int,
        *,
        seed: SeedLike = None,
        sampling_mode: str = "fast",
        wait: bool = True,
    ) -> SampleRequest:
        """Queue a request for ``n`` rows; returns its :class:`SampleRequest`.

        Serving defaults to the relaxed ``"fast"`` mode (request
        ``sampling_mode="exact"`` for the bit-reproducible path).  Blocks
        while the in-flight budget is full; with ``wait=False`` raises
        :class:`ServiceOverloaded` instead.
        """
        if sampling_mode not in SAMPLING_MODES:
            raise ValueError(
                f"unknown sampling mode {sampling_mode!r}; use one of {SAMPLING_MODES}"
            )
        if n < 0:
            raise ValueError(f"cannot sample a negative number of rows ({n})")
        # Reject un-spawnable seeds here, in the caller's thread — the
        # dispatcher derives the chunk streams from this seed later, and a
        # bad one must not surface there.
        spawn_seed_sequences(seed, 0)
        request = SampleRequest(n, seed, sampling_mode)
        request._service = self
        with self._lock:
            ticket = self._ticket_counter
            self._ticket_counter += 1
            self._admission_waiters.append(ticket)
            try:
                while not (
                    self._admission_waiters[0] == ticket
                    and (self._admissible(n) or self._closing)
                ):
                    if not wait:
                        raise ServiceOverloaded(
                            f"in-flight budget full ({self._in_flight_rows}/"
                            f"{self.max_inflight_rows} rows, "
                            f"{len(self._admission_waiters) - 1} submitter(s) waiting); "
                            "retry later"
                        )
                    self._lock.wait()
                if self._closing:
                    raise RuntimeError("service is closed")
                self._in_flight_rows += n
                self._queue.append(request)
            finally:
                # The ticket leaves the line whether we admitted, refused or
                # were closed; whoever is behind may now reach the front.
                self._admission_waiters.remove(ticket)
                self._lock.notify_all()
        return request

    def sample(
        self, n: int, *, seed: SeedLike = None, sampling_mode: str = "fast"
    ) -> Table:
        """Synchronous convenience: submit and wait for the table."""
        return self.submit(n, seed=seed, sampling_mode=sampling_mode).result()

    def stats(self) -> ServiceStats:
        with self._lock:
            latencies = sorted(self._latencies)
            queue_depth = len(self._queue)
            in_flight = self._in_flight_rows
            total_requests = self._total_requests
            total_rows = self._total_rows
            degraded_passes = self._degraded_passes
            cancelled = self._cancelled_requests
        faults = self._sampler.fault_stats()
        uptime = time.perf_counter() - self._started_at
        return ServiceStats(
            rows_per_second=total_rows / uptime if uptime > 0 else 0.0,
            queue_depth=queue_depth,
            in_flight_rows=in_flight,
            p50_latency=self._percentile(latencies, 0.50),
            p95_latency=self._percentile(latencies, 0.95),
            total_requests=total_requests,
            total_rows=total_rows,
            uptime=uptime,
            pool_restarts=faults.pool_restarts,
            chunk_retries=faults.chunk_retries,
            chunk_timeouts=faults.chunk_timeouts,
            hedges=faults.hedges,
            hedge_wins=faults.hedge_wins,
            degraded_passes=degraded_passes,
            cancelled_requests=cancelled,
        )

    def close(self) -> None:
        """Drain queued requests, stop the dispatcher, shut the pool down."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._lock.notify_all()
        self._dispatcher.join()
        self._sampler.close()

    def __enter__(self) -> "SamplingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cancellation ------------------------------------------------------------
    def _cancel_request(self, request: SampleRequest) -> bool:
        with self._lock:
            if request.done():
                return False
            try:
                self._queue.remove(request)
            except ValueError:
                pass  # already picked up by a dispatch tick; outcome discarded
            request.cancelled = True
            resolved = request._resolve(None, CancelledError("request cancelled"))
            if resolved:
                self._release_budget_locked(request)
                self._cancelled_requests += 1
            self._lock.notify_all()  # budget freed: wake blocked submitters
            return resolved

    def _release_budget_locked(self, request: SampleRequest) -> None:
        """Release the request's admitted rows exactly once (cancel + finish
        can both reach here)."""
        if not request._budget_released:
            request._budget_released = True
            self._in_flight_rows -= request.n

    # -- dispatcher --------------------------------------------------------------
    def _admissible(self, n: int) -> bool:
        if self._in_flight_rows == 0:
            return True  # an oversized request must not deadlock an idle service
        return self._in_flight_rows + n <= self.max_inflight_rows

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._pending_swaps and not self._closing:
                    self._lock.wait()
                # Swaps apply at this safe point — no micro-batch in flight.
                swaps = list(self._pending_swaps)
                self._pending_swaps.clear()
                if not self._queue and not swaps and self._closing:
                    return
                # The micro-batch: everything queued right now.
                batch = list(self._queue)
                self._queue.clear()
            if swaps:
                self._apply_swaps(swaps)
            if batch:
                self._serve_batch(batch)
            with self._lock:
                self._lock.notify_all()  # budget freed: wake blocked submitters

    def _apply_swaps(self, swaps: List[_SwapTicket]) -> None:
        """Install the most recent pending model (earlier ones are superseded).

        One pool rebuild regardless of how many swaps raced in; every ticket
        resolves with the rebuild's outcome.  A failed rebuild must not take
        the dispatcher down — the error goes to the swap's waiters, and the
        service keeps serving on whatever model survived.
        """
        error: Optional[BaseException] = None
        try:
            self._sampler.swap_model(swaps[-1].model)
            with self._lock:
                self._model_swaps += 1
        except BaseException as exc:  # noqa: BLE001 - forwarded to the waiters
            error = exc
        for ticket in swaps:
            ticket.resolve(error)

    def _serve_batch(self, batch: List[SampleRequest]) -> None:
        """One sharded pass over the chunks of every request in the batch.

        All requests' chunks are submitted to the pool up front (that *is*
        the micro-batch), then each request resolves independently: a chunk
        failure affects only the request whose chunk exhausted its budget.
        Pool-level collapse (supervision out of restarts) downgrades the
        affected request — and every one after it — to the in-process
        serial path instead of erroring: degraded, never dropped.
        """
        pooled = self._sampler.workers > 1 and not self._sampler.pool_broken
        run = self._sampler.chunk_run() if pooled else None
        jobs = []  # (request, sizes, children, chunk handles | None, submit error)
        for request in batch:
            sizes, children, handles = [], [], None
            error: Optional[BaseException] = None
            # Everything per-request stays inside a per-request guard: one
            # bad request must never take the dispatcher thread (and with it
            # the whole service) down.
            try:
                sizes, children = self._sampler.chunk_plan(request.n, request.seed)
                if run is not None:
                    handles = [
                        run.submit(index, size, child, request.sampling_mode)
                        for index, (size, child) in enumerate(zip(sizes, children))
                    ]
            except (WorkerPoolBroken, BrokenExecutor):
                handles = None  # pool died at submission: serve this one serially
            except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
                error = exc
            jobs.append((request, sizes, children, handles, error))

        for request, sizes, children, handles, error in jobs:
            if error is not None:
                self._finish(request, None, error)
                continue
            try:
                if handles is not None:
                    try:
                        chunks = self._gather(handles)
                    except (WorkerPoolBroken, BrokenExecutor):
                        chunks = self._degraded_pass(request, sizes, children)
                else:
                    if pooled:
                        # Submission already found the pool dead.
                        chunks = self._degraded_pass(request, sizes, children)
                    else:
                        chunks = [
                            self._sampler.sample_chunk_local(
                                size, child, request.sampling_mode
                            )
                            for size, child in zip(sizes, children)
                        ]
                table = self._sampler.assemble(
                    chunks, seed=request.seed, sampling_mode=request.sampling_mode
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
                self._finish(request, None, exc)
                continue
            self._finish(request, table, None)

    @staticmethod
    def _gather(handles) -> List[Table]:
        """Resolve a request's chunk handles; cancel the rest on failure."""
        chunks = []
        for position, handle in enumerate(handles):
            try:
                chunks.append(handle.result())
            except BaseException:
                for sibling in handles[position + 1:]:
                    sibling.cancel()
                raise
        return chunks

    def _degraded_pass(self, request: SampleRequest, sizes, children) -> List[Table]:
        """Serve one request in-process after the pool collapsed.

        Byte-identical to the pooled pass by the seed contract — the chunks
        draw from the same child streams regardless of where they run.
        """
        with self._lock:
            self._degraded_passes += 1
        return [
            self._sampler.sample_chunk_local(size, child, request.sampling_mode)
            for size, child in zip(sizes, children)
        ]

    def _finish(
        self, request: SampleRequest, table: Optional[Table], error: Optional[BaseException]
    ) -> None:
        with self._lock:
            delivered = request._resolve(table, error)
            self._release_budget_locked(request)
            if delivered:
                self._total_requests += 1
                if table is not None:
                    self._total_rows += request.n
                if request.latency is not None and error is None:
                    self._latencies.append(request.latency)

    @staticmethod
    def _percentile(sorted_values: List[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
        return sorted_values[index]
