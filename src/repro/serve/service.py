"""The sampling service: a fair, admission-controlled micro-batching queue.

Serving traffic is many concurrent, mostly small requests from many
tenants, not one giant request.  :class:`SamplingService` accepts
:class:`~repro.serve.api.RequestSpec` submissions from any thread
(:meth:`~SamplingService.submit` returns a :class:`SampleRequest` handle),
and a dispatcher thread drains the queue in *micro-batches*: the requests
the weighted fair queue yields at the moment the dispatcher wakes are
coalesced into one sharded pass — all their chunks are submitted to the
worker pool interleaved, so the pool pipelines across request boundaries
instead of draining and refilling per request.

Fairness: queued requests are ordered by **start-time weighted fair
queueing** over ``(tenant, priority)`` flows.  Each flow accumulates
virtual finish times at a rate of ``rows / priority weight`` (see
:data:`~repro.serve.api.PRIORITY_CLASSES`), so a tenant flooding the queue
with bulk work advances its own virtual clock and later requests from other
tenants overtake it — no flow starves, and an ``interactive`` flow gets 4×
the share of a ``batch`` flow when both are backlogged.  Bound the
micro-batch with ``microbatch_rows`` to make the fair ordering matter
between dispatch ticks (unbounded batches drain everything at once, the
legacy behaviour).  Scheduling never changes *bytes*: each request's chunks
draw from the request's **own** seed streams (the sharding contract of
:mod:`repro.serve.sharded`), so any serving order returns exactly what each
request would have returned alone.

Backpressure and admission: a bounded in-flight row budget makes
:meth:`submit` block (or raise :class:`ServiceOverloaded` with
``wait=False``) while full, exactly as before.  An optional
:class:`~repro.serve.admission.AdmissionPolicy` generalizes that signal to
up-front *rejection* — queue-depth and backlog-row caps plus per-request
deadline (SLO) checks against an observed-service-rate estimate — raising
:class:`~repro.serve.admission.AdmissionRejected` (a
:class:`ServiceOverloaded` subclass; HTTP 429 at the front door).  Once a
request is admitted it is always served.  A caller that stops waiting
should :meth:`SampleRequest.cancel` to release its budget.

Autoscaling: with an :class:`~repro.serve.admission.AutoscalePolicy` the
dispatcher resizes the worker pool toward the queue-depth demand
(``ceil(demand rows / rows_per_worker)`` within ``[min_workers,
max_workers]``) at its safe points — immediately up, patiently down.
Byte-safe by the worker-count-invariance of the sharding contract.

Fault tolerance is unchanged from PR 6: chunk failures / timeouts /
stragglers are absorbed by :class:`~repro.serve.sharded.ChunkPolicy`,
worker death by pool supervision, and pool collapse degrades to byte-
identical in-process serving.  :meth:`stats` reports one unified tree
(:meth:`ServiceStats.to_dict`): throughput, queue, latency, workers /
autoscale, fault counters, admission counters and per-tenant latencies.
"""

from __future__ import annotations

import heapq
import operator
import threading
import time
import warnings
from collections import deque
from concurrent.futures import BrokenExecutor, CancelledError
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.models.base import Surrogate
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    Tracer,
    request_span_id,
    span_id,
    trace_id_from_child,
    trace_id_from_seed,
    wall_clock,
)
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    AutoscalePolicy,
    ServiceOverloaded,
)
from repro.serve.api import RequestSpec, priority_weight
from repro.serve.faults import FaultPlan
from repro.serve.sharded import ChunkPolicy, ShardedSampler
from repro.tabular.table import Table
from repro.utils.parallel import WorkerPoolBroken
from repro.utils.rng import SeedLike

__all__ = ["SampleRequest", "SamplingService", "ServiceOverloaded", "ServiceStats"]


class _SwapTicket:
    """One pending hot-swap: the new model plus a completion event."""

    def __init__(self, model: Surrogate) -> None:
        self.model = model
        self.done = threading.Event()
        self.error: Optional[BaseException] = None

    def resolve(self, error: Optional[BaseException]) -> None:
        self.error = error
        self.done.set()


class SampleRequest:
    """Handle for one submitted request; resolves to a :class:`Table`."""

    def __init__(self, spec: RequestSpec) -> None:
        self.spec = spec
        self.submitted_at = time.perf_counter()
        self._done = threading.Event()
        self._result: Optional[Table] = None
        self._error: Optional[BaseException] = None
        self.latency: Optional[float] = None
        self.cancelled = False
        self._budget_released = False
        self._service: Optional["SamplingService"] = None
        # Weighted-fair-queue bookkeeping (owned by the service's queue).
        self._queued = False
        self._wfq_start = 0.0
        # Observability stashes (owned by the service; unset when untraced).
        self._obs_admitted_at: Optional[float] = None
        self._obs_trace_id: Optional[str] = None

    # Legacy attribute views (the pre-RequestSpec handle surface).
    @property
    def n(self) -> int:
        return self.spec.n

    @property
    def seed(self) -> SeedLike:
        return self.spec.seed

    @property
    def sampling_mode(self) -> str:
        return self.spec.sampling_mode

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def priority(self) -> str:
        return self.spec.priority

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Table:
        """Block until the request is served; returns the sampled table.

        A caller that gives up after a timeout should follow with
        :meth:`cancel` — otherwise the admitted rows keep occupying the
        service's backpressure budget until the dispatcher reaches the
        request.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request of {self.spec.n} rows not served within {timeout}s "
                "(cancel() it to release its admission budget)"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        """Abandon the request, releasing its backpressure budget.

        Returns ``True`` when the request was cancelled (it resolves
        immediately; :meth:`result` raises :class:`CancelledError`), and
        ``False`` when it had already completed.  A request the dispatcher
        is currently generating cannot be un-generated: its handle still
        resolves as cancelled right away, the budget is still released, and
        the eventually produced table is discarded.
        """
        service = self._service
        if service is None:
            return False
        return service._cancel_request(self)

    def _resolve(
        self, result: Optional[Table], error: Optional[BaseException]
    ) -> bool:
        """Deliver an outcome once; late outcomes are discarded (→ False)."""
        if self._done.is_set():
            return False
        self.latency = time.perf_counter() - self.submitted_at
        self._result = result
        self._error = error
        self._done.set()
        return True


class _FairQueue:
    """Start-time weighted fair queueing over ``(tenant, priority)`` flows.

    Each pushed request receives a virtual *finish* tag::

        start  = max(virtual_time, flow's previous finish)
        finish = start + rows / priority_weight

    and requests pop in finish order (ties: arrival order).  The virtual
    clock advances to the start tag of whatever is being served, so a flow
    that went idle re-enters at the current clock instead of catching up on
    credit it never queued for.  Cancellation is lazy: a discarded request
    stays in the heap and is skipped when it surfaces.  When the queue
    fully drains, the clock and flow tags reset — a fresh backlog starts a
    fresh round.  Not thread-safe; the service's lock guards every call.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, SampleRequest]] = []
        self._seq = 0
        self._vtime = 0.0
        self._flow_finish: Dict[Tuple[str, str], float] = {}
        self._live = 0
        self._live_rows = 0

    def __len__(self) -> int:
        return self._live

    @property
    def rows(self) -> int:
        """Rows queued (live requests only)."""
        return self._live_rows

    def push(self, request: SampleRequest) -> None:
        spec = request.spec
        flow = (spec.tenant, spec.priority)
        start = max(self._vtime, self._flow_finish.get(flow, 0.0))
        finish = start + max(spec.n, 1) / priority_weight(spec.priority)
        self._flow_finish[flow] = finish
        request._wfq_start = start
        request._queued = True
        heapq.heappush(self._heap, (finish, self._seq, request))
        self._seq += 1
        self._live += 1
        self._live_rows += spec.n

    def discard(self, request: SampleRequest) -> bool:
        """Remove a queued request (lazy: its heap entry dies when popped)."""
        if not request._queued:
            return False
        request._queued = False
        self._live -= 1
        self._live_rows -= request.spec.n
        return True

    def pop_batch(self, max_rows: Optional[int]) -> List[SampleRequest]:
        """The next micro-batch in fair order, bounded by ``max_rows``.

        Always yields at least one request when any is queued (a request
        larger than the bound must not starve); ``None`` drains everything.
        """
        batch: List[SampleRequest] = []
        rows = 0
        while self._heap:
            finish, seq, request = self._heap[0]
            if not request._queued:
                heapq.heappop(self._heap)
                continue
            if batch and max_rows is not None and rows + request.spec.n > max_rows:
                break
            heapq.heappop(self._heap)
            request._queued = False
            self._live -= 1
            self._live_rows -= request.spec.n
            self._vtime = max(self._vtime, request._wfq_start)
            batch.append(request)
            rows += request.spec.n
        if self._live == 0:
            self._heap.clear()
            self._flow_finish.clear()
            self._vtime = 0.0
        return batch


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time view of service health (see :meth:`to_dict`)."""

    #: Rows delivered per second of service uptime.
    rows_per_second: float
    #: Requests waiting for the dispatcher (not yet in a sharded pass).
    queue_depth: int
    #: Rows admitted but not yet delivered (the backpressure quantity).
    in_flight_rows: int
    #: Median / 95th-percentile request latency over the sliding window (s).
    p50_latency: float
    p95_latency: float
    total_requests: int
    total_rows: int
    uptime: float
    #: Supervised worker-pool rebuilds after worker death.
    pool_restarts: int = 0
    #: Chunk resubmissions after task failures or deadline expiries.
    chunk_retries: int = 0
    #: Chunk attempts abandoned at their per-chunk deadline.
    chunk_timeouts: int = 0
    #: Straggler duplicates submitted / duplicates that beat their primary.
    hedges: int = 0
    hedge_wins: int = 0
    #: Requests served by the in-process fallback after pool collapse.
    degraded_passes: int = 0
    #: Requests abandoned via :meth:`SampleRequest.cancel`.
    cancelled_requests: int = 0
    #: Current worker count and autoscale activity.
    workers: int = 1
    scale_ups: int = 0
    scale_downs: int = 0
    #: True once the pool collapsed and the service runs in-process.
    degraded: bool = False
    #: Admission counters (empty mapping = admission control disabled).
    admission: Mapping[str, int] = field(default_factory=dict)
    #: Per-tenant ``{"requests", "rows", "p50_wait_s", "p95_wait_s"}``.
    tenants: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The unified stats tree.

        Stable field names shared by the CLI ``--json`` payloads, the HTTP
        ``/stats`` route and the scenario reports' ``timing.service`` block
        — one namespace for throughput, queue, latency, worker/autoscale,
        fault, admission and per-tenant counters.
        """
        return {
            "throughput": {
                "rows_per_second": round(self.rows_per_second, 3),
                "total_requests": self.total_requests,
                "total_rows": self.total_rows,
                "uptime_s": round(self.uptime, 6),
            },
            "queue": {
                "depth": self.queue_depth,
                "in_flight_rows": self.in_flight_rows,
            },
            "latency": {
                "p50_s": round(self.p50_latency, 6),
                "p95_s": round(self.p95_latency, 6),
            },
            "workers": {
                "current": self.workers,
                "scale_ups": self.scale_ups,
                "scale_downs": self.scale_downs,
                "degraded": self.degraded,
            },
            "faults": {
                "pool_restarts": self.pool_restarts,
                "chunk_retries": self.chunk_retries,
                "chunk_timeouts": self.chunk_timeouts,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "degraded_passes": self.degraded_passes,
                "cancelled_requests": self.cancelled_requests,
            },
            "admission": dict(self.admission),
            "tenants": {
                tenant: dict(values) for tenant, values in sorted(self.tenants.items())
            },
        }


class SamplingService:
    """Serve sampling requests from a fitted surrogate (or a registry entry).

    Parameters
    ----------
    model:
        The fitted surrogate to serve.
    workers / chunk_size:
        Forwarded to the underlying :class:`ShardedSampler`.
    max_inflight_rows:
        The backpressure budget: total rows admitted-but-undelivered before
        :meth:`submit` blocks.  A request larger than the whole budget is
        admitted when the service is otherwise idle (it would never fit
        alongside other work, but must not deadlock alone).
    latency_window:
        Number of recent request latencies kept for the p50/p95 stats.
    chunk_policy / fault_plan / max_pool_restarts:
        Forwarded to the sharded engine: the per-chunk resilience policy,
        an optional deterministic fault-injection plan (chaos runs), and the
        pool supervision restart budget.
    admission:
        Optional :class:`~repro.serve.admission.AdmissionPolicy`: reject
        (instead of queue) on queue-depth / backlog-row caps or a blown
        per-request deadline estimate.  ``None`` admits everything.
    autoscale:
        Optional :class:`~repro.serve.admission.AutoscalePolicy`: the
        dispatcher resizes the pool with queue demand between its bounds.
    microbatch_rows:
        Upper bound on rows coalesced per dispatch tick.  ``None`` (default)
        drains the whole queue each tick; a bound makes the weighted fair
        ordering effective across ticks under sustained backlog.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` shared by every layer
        of this service's stack (sampler fault counters, shm transport,
        admission, the request/latency instruments here).  ``None`` creates
        a private registry, exposed as :attr:`metrics`; the front door
        renders it on ``GET /metrics``.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  When set, each
        request records its span taxonomy (``request`` → ``admission`` /
        ``queue_wait`` / ``dispatch`` / ``chunk[i]``–``attempt[j]`` /
        ``worker_compute`` / ``shm_encode`` / ``shm_decode`` /
        ``assemble`` / ``deliver``); ``None`` is a strict no-op — served
        bytes are identical either way.

    The service starts its pool and dispatcher on construction and is a
    context manager; :meth:`close` drains the queue and shuts down.
    """

    def __init__(
        self,
        model: Surrogate,
        *,
        workers: Optional[int] = None,
        chunk_size: int = ShardedSampler.DEFAULT_CHUNK_SIZE,
        max_inflight_rows: int = 4_000_000,
        latency_window: int = 512,
        chunk_policy: Optional[ChunkPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_pool_restarts: int = 5,
        admission: Optional[AdmissionPolicy] = None,
        autoscale: Optional[AutoscalePolicy] = None,
        microbatch_rows: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_inflight_rows < 1:
            raise ValueError(f"max_inflight_rows must be positive, got {max_inflight_rows}")
        if microbatch_rows is not None and microbatch_rows < 1:
            raise ValueError(f"microbatch_rows must be positive or None, got {microbatch_rows}")
        if workers is None and autoscale is not None:
            workers = autoscale.min_workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer
        self._sampler = ShardedSampler(
            model,
            workers=workers,
            chunk_size=chunk_size,
            chunk_policy=chunk_policy,
            fault_plan=fault_plan,
            max_pool_restarts=max_pool_restarts,
            metrics=self.metrics,
            tracer=tracer,
        )
        self.max_inflight_rows = int(max_inflight_rows)
        self._admission = (
            AdmissionController(admission, metrics=self.metrics)
            if admission is not None
            else None
        )
        self._autoscale = autoscale
        self._microbatch_rows = microbatch_rows
        self._lock = threading.Condition()
        self._queue = _FairQueue()
        self._in_flight_rows = 0
        self._pending_requests = 0
        # FIFO admission tickets: submitters are admitted strictly in
        # arrival order, so an oversized request (admissible only when the
        # service drains) cannot be starved by a stream of small requests
        # slipping past it every time the budget frees up.  The deque holds
        # the tickets still waiting; only its front may admit.
        self._ticket_counter = 0
        self._admission_waiters: Deque[int] = deque()
        self._pending_swaps: Deque[_SwapTicket] = deque()
        self._closing = False
        self._latency_window = int(latency_window)
        # Exact-percentile sliding windows.  The registry histograms trade
        # exactness for O(1) memory; :meth:`stats` keeps its historical
        # exact-window p50/p95 semantics from these deques.
        self._latencies: Deque[float] = deque(maxlen=self._latency_window)
        self._tenant_latencies: Dict[str, Deque[float]] = {}
        self._shrink_streak = 0
        registry = self.metrics
        self._m_requests = registry.counter(
            "repro_serve_requests_total",
            "Requests delivered without error, by tenant.",
            labels=("tenant",),
        )
        self._m_request_errors = registry.counter(
            "repro_serve_request_errors_total", "Requests that resolved with an error."
        )
        self._m_rows = registry.counter(
            "repro_serve_rows_total", "Rows delivered, by tenant.", labels=("tenant",)
        )
        self._m_batches = registry.counter(
            "repro_serve_batches_total", "Micro-batches dispatched."
        )
        self._m_degraded_passes = registry.counter(
            "repro_serve_degraded_passes_total",
            "Requests served in-process after pool collapse.",
        )
        self._m_cancelled = registry.counter(
            "repro_serve_cancelled_requests_total", "Requests abandoned via cancel()."
        )
        self._m_scale_ups = registry.counter(
            "repro_serve_scale_ups_total", "Autoscale pool expansions."
        )
        self._m_scale_downs = registry.counter(
            "repro_serve_scale_downs_total", "Autoscale pool shrinks."
        )
        self._m_model_swaps = registry.counter(
            "repro_serve_model_swaps_total", "Hot model swaps applied."
        )
        self._m_latency = registry.histogram(
            "repro_serve_request_latency_seconds",
            "End-to-end request latency (submit to deliver), by flow.",
            labels=("tenant", "priority"),
        )
        self._m_queue_wait = registry.histogram(
            "repro_serve_queue_wait_seconds",
            "Admission-to-dispatch queue wait, by flow.",
            labels=("tenant", "priority"),
        )
        self._g_queue_depth = registry.gauge(
            "repro_serve_queue_depth", "Requests waiting for the dispatcher."
        )
        self._g_inflight_rows = registry.gauge(
            "repro_serve_inflight_rows", "Rows admitted but not yet delivered."
        )
        self._g_workers = registry.gauge(
            "repro_serve_workers", "Current worker count."
        )
        self._g_degraded = registry.gauge(
            "repro_serve_degraded", "1 once the pool collapsed to in-process serving."
        )
        self._g_pool_pending = registry.gauge(
            "repro_serve_pool_pending_tasks",
            "Chunk tasks submitted to the pool and not yet resolved.",
        )
        self._started_at = time.perf_counter()
        # Spawn the worker pool *before* the dispatcher thread exists: the
        # pool forks at start on platforms where fork is the default, and
        # forking a multi-threaded process is where the trouble lives.
        self._sampler.start()
        # Seed the level gauges so every required series renders on a
        # ``/metrics`` scrape that lands before the first request.
        self._g_queue_depth.set(0)
        self._g_inflight_rows.set(0)
        self._g_workers.set(self._sampler.workers)
        self._g_degraded.set(0)
        self._g_pool_pending.set(0)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- client API --------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._sampler.workers

    @property
    def chunk_size(self) -> int:
        return self._sampler.chunk_size

    @property
    def degraded(self) -> bool:
        """True once the pool collapsed and the service runs in-process."""
        return self._sampler.pool_broken

    @property
    def model(self) -> Surrogate:
        """The surrogate currently being served."""
        return self._sampler.model

    @property
    def model_swaps(self) -> int:
        """Hot model swaps applied since the service started."""
        return int(self._m_model_swaps.total())

    @property
    def tracer(self) -> Optional[Tracer]:
        """The installed span collector (``None`` when tracing is off)."""
        return self._tracer

    def swap_model(
        self, model: Surrogate, *, wait: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Hot-swap the served model with **zero lost requests**.

        The swap is queued to the dispatcher, which applies it at the safe
        point between micro-batches: requests already submitted keep their
        admission slots and are served (by whichever model the dispatcher
        holds when their batch runs — submit-then-swap ordering is only
        deterministic across a drained queue, which is how the scenario
        engine drives it), and the worker pool is rebuilt from the new
        model's snapshot.  With ``wait=True`` (default) blocks until the
        swap has been applied; raises the swap's error if the rebuild fails.
        """
        if not model.is_fitted:
            raise RuntimeError(
                f"{type(model).__name__} is not fitted; fit() it before serving"
            )
        ticket = _SwapTicket(model)
        with self._lock:
            if self._closing:
                raise RuntimeError("service is closed")
            self._pending_swaps.append(ticket)
            self._lock.notify_all()  # wake an idle dispatcher
        if wait:
            if not ticket.done.wait(timeout):
                raise TimeoutError(f"model swap not applied within {timeout}s")
            if ticket.error is not None:
                raise ticket.error

    def _coerce_spec(
        self,
        request: object,
        legacy: Tuple[object, ...],
        seed: SeedLike,
        sampling_mode: Optional[str],
        tenant: Optional[str],
        priority: Optional[str],
        deadline: Optional[float],
    ) -> RequestSpec:
        """One :class:`RequestSpec` from any accepted calling convention.

        Canonical: ``submit(RequestSpec(...))``.  Convenience: ``submit(n,
        seed=..., sampling_mode=..., tenant=..., ...)`` (keyword-only knobs).
        Deprecated: the original positional ``submit(n, seed, sampling_mode)``
        — still byte-equivalent, now with a :class:`DeprecationWarning`.
        """
        if isinstance(request, RequestSpec):
            if legacy or any(
                value is not None
                for value in (seed, sampling_mode, tenant, priority, deadline)
            ):
                raise TypeError(
                    "pass either a RequestSpec or bare arguments, not both"
                )
            return request
        try:
            request = operator.index(request)  # int-likes (numpy ints) welcome
        except TypeError:
            raise TypeError(
                f"expected a RequestSpec or a row count, got {type(request).__name__}"
            ) from None
        if legacy:
            warnings.warn(
                "positional seed/sampling_mode arguments are deprecated; pass a "
                "RequestSpec (or use keyword arguments)",
                DeprecationWarning,
                stacklevel=3,
            )
            if len(legacy) > 2:
                raise TypeError(
                    f"at most (n, seed, sampling_mode) positionally; got {len(legacy) + 1} arguments"
                )
            if seed is not None or (len(legacy) == 2 and sampling_mode is not None):
                raise TypeError("seed/sampling_mode given both positionally and by keyword")
            seed = legacy[0]  # type: ignore[assignment]
            if len(legacy) == 2:
                sampling_mode = str(legacy[1])
        return RequestSpec(
            n=request,
            seed=seed,
            sampling_mode=sampling_mode if sampling_mode is not None else "fast",
            tenant=tenant if tenant is not None else "default",
            priority=priority if priority is not None else "normal",
            deadline=deadline,
        )

    def submit(
        self,
        request: object,
        *legacy: object,
        seed: SeedLike = None,
        sampling_mode: Optional[str] = None,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
        wait: bool = True,
    ) -> SampleRequest:
        """Queue a request; returns its :class:`SampleRequest` handle.

        Accepts a :class:`~repro.serve.api.RequestSpec` (the canonical
        contract) or a row count with keyword knobs; serving defaults to the
        relaxed ``"fast"`` mode (request ``sampling_mode="exact"`` for the
        bit-reproducible path).  Blocks while the in-flight budget is full;
        with ``wait=False`` raises :class:`ServiceOverloaded` instead.  With
        an admission policy configured, over-limit or deadline-blown
        requests raise :class:`~repro.serve.admission.AdmissionRejected`
        regardless of ``wait``.
        """
        spec = self._coerce_spec(
            request, legacy, seed, sampling_mode, tenant, priority, deadline
        )
        handle = SampleRequest(spec)
        handle._service = self
        n = spec.n
        with self._lock:
            if self._closing:
                raise RuntimeError("service is closed")
            if self._admission is not None:
                self._admission.check(
                    spec,
                    pending_requests=self._pending_requests,
                    backlog_rows=self._in_flight_rows,
                )
            ticket = self._ticket_counter
            self._ticket_counter += 1
            self._admission_waiters.append(ticket)
            try:
                while not (
                    self._admission_waiters[0] == ticket
                    and (self._admissible(n) or self._closing)
                ):
                    if not wait:
                        raise ServiceOverloaded(
                            f"in-flight budget full ({self._in_flight_rows}/"
                            f"{self.max_inflight_rows} rows, "
                            f"{len(self._admission_waiters) - 1} submitter(s) waiting); "
                            "retry later"
                        )
                    self._lock.wait()
                if self._closing:
                    raise RuntimeError("service is closed")
                self._in_flight_rows += n
                self._pending_requests += 1
                self._queue.push(handle)
                handle._obs_admitted_at = time.perf_counter()
                self._set_queue_gauges_locked()
            finally:
                # The ticket leaves the line whether we admitted, refused or
                # were closed; whoever is behind may now reach the front.
                self._admission_waiters.remove(ticket)
                self._lock.notify_all()
        return handle

    def sample(
        self,
        request: object,
        *legacy: object,
        seed: SeedLike = None,
        sampling_mode: Optional[str] = None,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Table:
        """Synchronous convenience: submit and wait for the table."""
        spec = self._coerce_spec(
            request, legacy, seed, sampling_mode, tenant, priority, deadline
        )
        return self.submit(spec).result()

    def stats(self) -> ServiceStats:
        """A :class:`ServiceStats` snapshot, read from the metrics registry.

        The counters here and the ``repro_serve_*`` series on ``/metrics``
        are the same numbers by construction — :meth:`stats` is a *view* of
        the registry (plus the exact-window latency percentiles), not a
        second set of books.
        """
        with self._lock:
            latencies = sorted(self._latencies)
            queue_depth = len(self._queue)
            in_flight = self._in_flight_rows
            tenant_waits = {
                tenant: sorted(window)
                for tenant, window in self._tenant_latencies.items()
            }
        tenant_requests = self._m_requests.series()
        tenant_rows = self._m_rows.series()
        total_rows = int(self._m_rows.total())
        total_requests = int(
            self._m_requests.total() + self._m_request_errors.total()
        )
        tenants = {
            tenant: {
                "requests": int(tenant_requests.get((tenant,), 0)),
                "rows": int(tenant_rows.get((tenant,), 0)),
                "p50_wait_s": self._percentile(waits, 0.50),
                "p95_wait_s": self._percentile(waits, 0.95),
            }
            for tenant, waits in tenant_waits.items()
        }
        faults = self._sampler.fault_stats()
        uptime = time.perf_counter() - self._started_at
        self._g_queue_depth.set(queue_depth)
        self._g_inflight_rows.set(in_flight)
        self._g_workers.set(self._sampler.workers)
        self._g_degraded.set(1 if self._sampler.pool_broken else 0)
        self._g_pool_pending.set(self._sampler.pool_pending_tasks)
        return ServiceStats(
            rows_per_second=total_rows / uptime if uptime > 0 else 0.0,
            queue_depth=queue_depth,
            in_flight_rows=in_flight,
            p50_latency=self._percentile(latencies, 0.50),
            p95_latency=self._percentile(latencies, 0.95),
            total_requests=total_requests,
            total_rows=total_rows,
            uptime=uptime,
            pool_restarts=faults.pool_restarts,
            chunk_retries=faults.chunk_retries,
            chunk_timeouts=faults.chunk_timeouts,
            hedges=faults.hedges,
            hedge_wins=faults.hedge_wins,
            degraded_passes=int(self._m_degraded_passes.total()),
            cancelled_requests=int(self._m_cancelled.total()),
            workers=self._sampler.workers,
            scale_ups=int(self._m_scale_ups.total()),
            scale_downs=int(self._m_scale_downs.total()),
            degraded=self._sampler.pool_broken,
            admission=self._admission.snapshot() if self._admission is not None else {},
            tenants=tenants,
        )

    def close(self) -> None:
        """Drain queued requests, stop the dispatcher, shut the pool down."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._lock.notify_all()
        self._dispatcher.join()
        self._sampler.close()

    def __enter__(self) -> "SamplingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cancellation ------------------------------------------------------------
    def _cancel_request(self, request: SampleRequest) -> bool:
        with self._lock:
            if request.done():
                return False
            self._queue.discard(request)  # no-op if a dispatch tick took it
            request.cancelled = True
            resolved = request._resolve(None, CancelledError("request cancelled"))
            if resolved:
                self._release_budget_locked(request)
                self._m_cancelled.inc()
            self._set_queue_gauges_locked()
            self._lock.notify_all()  # budget freed: wake blocked submitters
            return resolved

    def _set_queue_gauges_locked(self) -> None:
        """Refresh the queue-level gauges (caller holds the service lock)."""
        self._g_queue_depth.set(len(self._queue))
        self._g_inflight_rows.set(self._in_flight_rows)

    def _release_budget_locked(self, request: SampleRequest) -> None:
        """Release the request's admitted rows exactly once (cancel + finish
        can both reach here)."""
        if not request._budget_released:
            request._budget_released = True
            self._in_flight_rows -= request.spec.n
            self._pending_requests -= 1

    # -- dispatcher --------------------------------------------------------------
    def _admissible(self, n: int) -> bool:
        if self._in_flight_rows == 0:
            return True  # an oversized request must not deadlock an idle service
        return self._in_flight_rows + n <= self.max_inflight_rows

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._pending_swaps and not self._closing:
                    self._lock.wait()
                # Swaps apply at this safe point — no micro-batch in flight.
                swaps = list(self._pending_swaps)
                self._pending_swaps.clear()
                if not self._queue and not swaps and self._closing:
                    return
                # The micro-batch: the fair queue's next slice (everything
                # queued, unless microbatch_rows bounds the tick).
                batch = self._queue.pop_batch(self._microbatch_rows)
                backlog_rows = self._queue.rows
                self._set_queue_gauges_locked()
            if swaps:
                self._apply_swaps(swaps)
            batch_rows = sum(request.spec.n for request in batch)
            self._autoscale_tick(batch_rows + backlog_rows)
            if batch:
                batch_started = time.perf_counter()
                self._serve_batch(batch)
                if self._admission is not None:
                    self._admission.observe_batch(
                        batch_rows, time.perf_counter() - batch_started
                    )
            with self._lock:
                self._lock.notify_all()  # budget freed: wake blocked submitters

    def _autoscale_tick(self, demand_rows: int) -> None:
        """Resize the pool toward the demand, at the dispatcher's safe point.

        Scale-up is immediate; scale-down waits for ``shrink_patience``
        consecutive under-demand ticks.  A broken pool is never resized —
        degraded mode is the supervisor's verdict, not a capacity problem.
        Bytes are invariant either way (the sharding contract).
        """
        policy = self._autoscale
        if policy is None or self._sampler.pool_broken:
            return
        target = policy.target_workers(demand_rows)
        current = self._sampler.workers
        if target > current:
            self._shrink_streak = 0
            if self._try_resize(target):
                self._m_scale_ups.inc()
        elif target < current:
            self._shrink_streak += 1
            if self._shrink_streak >= policy.shrink_patience:
                self._shrink_streak = 0
                if self._try_resize(target):
                    self._m_scale_downs.inc()
        else:
            self._shrink_streak = 0

    def _try_resize(self, workers: int) -> bool:
        """Resize the sampler; a failed resize must not kill the dispatcher."""
        try:
            self._sampler.resize(workers)
            self._g_workers.set(self._sampler.workers)
            return True
        except Exception:
            return False  # keep serving at the current size

    def _apply_swaps(self, swaps: List[_SwapTicket]) -> None:
        """Install the most recent pending model (earlier ones are superseded).

        One pool rebuild regardless of how many swaps raced in; every ticket
        resolves with the rebuild's outcome.  A failed rebuild must not take
        the dispatcher down — the error goes to the swap's waiters, and the
        service keeps serving on whatever model survived.
        """
        error: Optional[BaseException] = None
        try:
            self._sampler.swap_model(swaps[-1].model)
            self._m_model_swaps.inc()
        except BaseException as exc:  # noqa: BLE001 - forwarded to the waiters
            error = exc
        for ticket in swaps:
            ticket.resolve(error)

    def _serve_batch(self, batch: List[SampleRequest]) -> None:
        """One sharded pass over the chunks of every request in the batch.

        All requests' chunks are submitted to the pool up front and
        *interleaved round-robin* across requests (that *is* the
        micro-batch: no request's chunks all queue behind another's), then
        each request resolves independently — a chunk failure affects only
        the request whose chunk exhausted its budget.  Pool-level collapse
        (supervision out of restarts) downgrades the affected request — and
        every one after it — to the in-process serial path instead of
        erroring: degraded, never dropped.
        """
        pooled = self._sampler.workers > 1 and not self._sampler.pool_broken
        run = self._sampler.chunk_run() if pooled else None
        tracer = self._tracer
        popped_at = time.perf_counter()
        self._m_batches.inc()
        # One plan per request: [request, sizes, children, handles, error].
        # ``handles`` is None on the pool-free path, else the submitted
        # chunk handles so far (shorter than ``sizes`` = submission died).
        plans: List[list] = []
        for request in batch:
            spec = request.spec
            admitted_at = (
                request._obs_admitted_at
                if request._obs_admitted_at is not None
                else request.submitted_at
            )
            self._m_queue_wait.observe(
                max(popped_at - admitted_at, 0.0),
                tenant=spec.tenant,
                priority=spec.priority,
            )
            sizes, children = [], []
            error: Optional[BaseException] = None
            try:
                sizes, children = self._sampler.chunk_plan(spec.n, spec.seed)
            except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
                error = exc
            if tracer is not None:
                trace_id = (
                    trace_id_from_child(children[0])
                    if children
                    else trace_id_from_seed(spec.seed)
                )
                request._obs_trace_id = trace_id
                root = request_span_id(trace_id)
                tracer.record_span(
                    "admission",
                    trace_id,
                    span_id=span_id(trace_id, "admission"),
                    parent_id=root,
                    start=wall_clock(request.submitted_at),
                    duration=admitted_at - request.submitted_at,
                    attrs={"tenant": spec.tenant, "priority": spec.priority},
                )
                tracer.record_span(
                    "queue_wait",
                    trace_id,
                    span_id=span_id(trace_id, "queue_wait"),
                    parent_id=root,
                    start=wall_clock(admitted_at),
                    duration=popped_at - admitted_at,
                )
            plans.append([request, sizes, children, [] if run is not None else None, error])

        dispatch_started = time.perf_counter()
        if run is not None:
            # Round-robin chunk submission across the batch's requests.
            submitting = True
            pool_died = False
            while submitting and not pool_died:
                submitting = False
                for plan in plans:
                    request, sizes, children, handles, error = plan
                    if handles is None or error is not None:
                        continue
                    index = len(handles)
                    if index >= len(sizes):
                        continue
                    try:
                        handles.append(
                            run.submit(
                                index, sizes[index], children[index],
                                request.spec.sampling_mode,
                            )
                        )
                        submitting = True
                    except (WorkerPoolBroken, BrokenExecutor):
                        pool_died = True  # every incomplete plan degrades below
                        break
                    except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
                        plan[4] = exc
                        for handle in handles:
                            handle.cancel()

        if tracer is not None:
            # One dispatch span per micro-batch, attributed to the first
            # traced request (the batch is the unit of dispatch, not the
            # request).
            first_trace = next(
                (plan[0]._obs_trace_id for plan in plans if plan[0]._obs_trace_id),
                None,
            )
            if first_trace is not None:
                tracer.record_span(
                    "dispatch",
                    first_trace,
                    span_id=span_id(first_trace, "dispatch"),
                    parent_id=request_span_id(first_trace),
                    start=wall_clock(dispatch_started),
                    duration=time.perf_counter() - dispatch_started,
                    attrs={"batch_requests": len(plans), "pooled": run is not None},
                )

        for request, sizes, children, handles, error in plans:
            if error is not None:
                self._finish(request, None, error)
                continue
            mode = request.spec.sampling_mode
            try:
                if handles is not None and len(handles) == len(sizes):
                    try:
                        chunks = self._gather(handles)
                    except (WorkerPoolBroken, BrokenExecutor):
                        chunks = self._degraded_pass(request, sizes, children)
                elif handles is not None:
                    # The pool died while this request was still submitting.
                    for handle in handles:
                        handle.cancel()
                    chunks = self._degraded_pass(request, sizes, children)
                else:
                    chunks = [
                        self._sampler.sample_chunk_local(size, child, mode)
                        for size, child in zip(sizes, children)
                    ]
                assemble_started = time.perf_counter()
                table = self._sampler.assemble(
                    chunks, seed=request.spec.seed, sampling_mode=mode
                )
                if tracer is not None and request._obs_trace_id is not None:
                    tracer.record_span(
                        "assemble",
                        request._obs_trace_id,
                        span_id=span_id(request._obs_trace_id, "assemble"),
                        parent_id=request_span_id(request._obs_trace_id),
                        start=wall_clock(assemble_started),
                        duration=time.perf_counter() - assemble_started,
                        attrs={"chunks": len(chunks), "rows": request.spec.n},
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
                self._finish(request, None, exc)
                continue
            self._finish(request, table, None)

    @staticmethod
    def _gather(handles) -> List[Table]:
        """Resolve a request's chunk handles; cancel the rest on failure."""
        chunks = []
        for position, handle in enumerate(handles):
            try:
                chunks.append(handle.result())
            except BaseException:
                for sibling in handles[position + 1:]:
                    sibling.cancel()
                raise
        return chunks

    def _degraded_pass(self, request: SampleRequest, sizes, children) -> List[Table]:
        """Serve one request in-process after the pool collapsed.

        Byte-identical to the pooled pass by the seed contract — the chunks
        draw from the same child streams regardless of where they run.
        """
        self._m_degraded_passes.inc()
        self._g_degraded.set(1)
        return [
            self._sampler.sample_chunk_local(size, child, request.spec.sampling_mode)
            for size, child in zip(sizes, children)
        ]

    def _finish(
        self, request: SampleRequest, table: Optional[Table], error: Optional[BaseException]
    ) -> None:
        deliver_started = time.perf_counter()
        spec = request.spec
        with self._lock:
            delivered = request._resolve(table, error)
            self._release_budget_locked(request)
            if delivered:
                if error is not None:
                    self._m_request_errors.inc()
                if table is not None:
                    self._m_rows.inc(spec.n, tenant=spec.tenant)
                if request.latency is not None and error is None:
                    self._latencies.append(request.latency)
                    self._m_requests.inc(tenant=spec.tenant)
                    if spec.tenant not in self._tenant_latencies:
                        self._tenant_latencies[spec.tenant] = deque(
                            maxlen=self._latency_window
                        )
                    self._tenant_latencies[spec.tenant].append(request.latency)
            self._set_queue_gauges_locked()
        if delivered and request.latency is not None and error is None:
            self._m_latency.observe(
                request.latency, tenant=spec.tenant, priority=spec.priority
            )
        tracer = self._tracer
        if tracer is not None and delivered and request._obs_trace_id is not None:
            trace_id = request._obs_trace_id
            root = request_span_id(trace_id)
            tracer.record_span(
                "deliver",
                trace_id,
                span_id=span_id(trace_id, "deliver"),
                parent_id=root,
                start=wall_clock(deliver_started),
                duration=time.perf_counter() - deliver_started,
                attrs={"error": type(error).__name__} if error is not None else None,
            )
            tracer.record_span(
                "request",
                trace_id,
                span_id=root,
                parent_id=None,
                start=wall_clock(request.submitted_at),
                duration=request.latency if request.latency is not None else 0.0,
                attrs={
                    "tenant": spec.tenant,
                    "priority": spec.priority,
                    "rows": spec.n,
                    "mode": spec.sampling_mode,
                },
            )

    @staticmethod
    def _percentile(sorted_values: List[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
        return sorted_values[index]
