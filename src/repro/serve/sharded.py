"""The sharded sampling engine: ``sample_batches`` chunks across a process pool.

The sharding contract
---------------------
:meth:`~repro.models.base.Surrogate.sample_batches` made chunks
embarrassingly parallel *by construction*: chunk ``i`` of a request draws
from the ``i``-th :class:`numpy.random.SeedSequence` child of the request
seed, so its bytes depend only on ``(model, seed, chunk_size, i)`` — never
on which process generates it, in what order, or how many sibling workers
exist.  :class:`ShardedSampler` exploits exactly that: it fans the chunks of
a request out across a persistent pool of worker processes (each holding a
deserialized snapshot of the fitted model with warmed serving caches) and
reassembles the chunks in index order.  The output is therefore

* byte-identical to ``Table.concat(list(model.sample_batches(n, chunk_size,
  seed=seed, sampling_mode=mode)))``, and
* byte-identical across **any** worker count, including the in-process
  ``workers=1`` path — proven for all five surrogates in both sampling
  modes by ``tests/test_serve_sharded.py``.

Workers are spawned once (:meth:`ShardedSampler.start`) and stay hot:
steady-state requests ship only ``(rows, seed-sequence, mode)`` descriptors
and receive chunk tables back.  Chunk submission is windowed, so a
million-row streaming request keeps at most a few chunks in flight and peak
parent memory stays bounded exactly as in the single-process streaming API.

The fault-tolerance contract
----------------------------
The same seed contract that makes chunks parallel makes them *re-executable*:
a chunk run again — on another worker, after a crash, or as a hedged
duplicate — regenerates **identical bytes**.  Recovery is therefore provable
equality, not a statistical claim, and the engine leans on it at three
levels:

* **Worker death** is handled below this module: the
  :class:`~repro.utils.parallel.WorkerPool` supervises its executor, rebuilds
  it after a crash (re-running the snapshot/warm-cache initializer), and
  resubmits every chunk that was queued behind the crash — nothing is lost,
  and the resubmitted chunks are byte-identical by the seed contract.
* **Per-chunk resilience** is governed by a :class:`ChunkPolicy`: each chunk
  attempt carries an optional deadline (``timeout``); a timed-out or failed
  attempt is resubmitted with exponential backoff up to ``max_retries``
  times; and with ``hedge_multiplier`` set, a chunk whose in-flight time
  exceeds that multiple of the run's median completed-chunk latency is
  *hedged* — a duplicate is submitted and the first successful result wins
  (when both finish, their tables are asserted equal).
* **Failure context**: a chunk that exhausts its budget raises
  :class:`ChunkError` naming the chunk index and size (chaining the last
  underlying error), after the remaining in-flight chunks of the request
  are cancelled — no abandoned siblings.  Pool-level collapse (the
  supervision budget itself exhausted) surfaces as
  :class:`~repro.utils.parallel.WorkerPoolBroken`, the signal the service
  layer uses to degrade to in-process generation.

Deterministic chaos tests drive all of these paths through the
:mod:`repro.serve.faults` plan installed via ``fault_plan=``; see
``tests/test_serve_faults.py`` for the byte-equality proofs.

The chunk transport
-------------------
How a finished chunk travels back to the parent is pluggable
(``transport=`` / the ``REPRO_SHM`` environment toggle):

* ``"shm"`` (the default where available): workers write the chunk's
  column buffers — ``float64`` numericals, ``int32`` categorical codes,
  vocabularies travel once with the snapshot — into a named
  :mod:`multiprocessing.shared_memory` segment and return only a tiny
  :class:`~repro.serve.shm.ChunkEnvelope`; the parent reassembles
  zero-copy views and unlinks the segment.  Segment lifecycle (normal
  consumption, timed-out attempts, hedge losers, worker crashes, pool
  close) is owned by :mod:`repro.serve.shm`.
* ``"pickle"``: the pre-transport behaviour — the chunk table itself is
  the task result.  Output bytes are identical either way; only the IPC
  cost differs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.models.base import SAMPLING_MODES, Surrogate
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    TracedChunk,
    Tracer,
    chunk_span_id,
    make_span,
    request_span_id,
    span_id,
    trace_id_from_child,
)
from repro.serve import faults as fault_injection
from repro.serve import shm as shm_transport
from repro.serve.api import RequestSpec
from repro.serve.faults import FaultPlan
from repro.serve.shm import ChunkEnvelope, ShmTransportConfig
from repro.tabular.table import Table
from repro.utils.logging import get_logger
from repro.utils.parallel import (
    SupervisedFuture,
    WorkerPool,
    WorkerPoolBroken,
    available_workers,
)
from repro.utils.rng import SeedLike, spawn_seed_sequences

__all__ = ["ChunkError", "ChunkFaultStats", "ChunkPolicy", "ShardedSampler"]

_LOG = get_logger(__name__)

#: The worker-process model snapshot, set once by :func:`_init_worker`.
_WORKER_MODEL: Optional[Surrogate] = None

#: The worker-side shm encoder (None under the pickle transport).
_WORKER_ENCODER: Optional[shm_transport.ChunkEncoder] = None

#: Whether workers should record ``worker_compute``/``shm_encode`` spans and
#: piggyback them on the task return path (see :mod:`repro.obs.tracing`).
_WORKER_TRACING: bool = False


def _init_worker(
    snapshot: bytes,
    chunk_rows: int,
    fault_plan: Optional[FaultPlan] = None,
    shm_config: Optional[ShmTransportConfig] = None,
    tracing: bool = False,
) -> None:
    """One-time worker setup: deserialize the model, warm its serving caches.

    Re-run by pool supervision after every executor rebuild, so recovered
    workers are exactly as warm as freshly started ones.  When a fault plan
    is provided (chaos tests, ``--fault-plan`` runs) it is installed here —
    the plan's exactly-once token latch lives on disk, so a rebuilt worker
    does not re-inject already-claimed faults.  With an shm transport
    config, the worker derives the chunk wire layout (schema + categorical
    vocabularies) from its own snapshot — the parent derives the identical
    layout from its copy, so no per-chunk metadata ever ships.  With
    ``tracing`` enabled the worker wraps each task result in a
    :class:`~repro.obs.tracing.TracedChunk` carrying its compute/encode
    spans home.
    """
    global _WORKER_MODEL, _WORKER_ENCODER, _WORKER_TRACING
    model = Surrogate.from_snapshot(snapshot)
    model.warm_serving_caches(chunk_rows)
    _WORKER_MODEL = model
    _WORKER_ENCODER = (
        shm_transport.ChunkEncoder(shm_config, model) if shm_config is not None else None
    )
    _WORKER_TRACING = bool(tracing)
    fault_injection.install(fault_plan)


def _sample_chunk(size: int, child: np.random.SeedSequence, sampling_mode: str):
    """Generate one chunk in the worker — the same call the parent would make.

    The chunk's index is recoverable from the seed contract itself (it is
    the last element of the child's spawn key), which is what lets the fault
    harness target "chunk i" — and the tracing layer derive the parent's
    trace/span IDs — without widening the task descriptor.

    Under the shm transport the return value is a
    :class:`~repro.serve.shm.ChunkEnvelope` (the table's buffers having been
    written to a shared segment); under the pickle transport it is the chunk
    :class:`~repro.tabular.table.Table` itself.  With tracing enabled either
    payload travels wrapped in a :class:`~repro.obs.tracing.TracedChunk`;
    the payload bytes are identical.
    """
    assert _WORKER_MODEL is not None, "worker used before initialization"
    spawn_key = getattr(child, "spawn_key", ())
    index = int(spawn_key[-1]) if spawn_key else 0
    fault_injection.maybe_inject(index)
    if not _WORKER_TRACING:
        table = _WORKER_MODEL.sample(
            size, seed=np.random.default_rng(child), sampling_mode=sampling_mode
        )
        if _WORKER_ENCODER is not None:
            return _WORKER_ENCODER.encode(table)
        return table

    trace_id = trace_id_from_child(child)
    parent = chunk_span_id(trace_id, index)
    spans = []
    start_wall = time.time()
    start = time.perf_counter()
    table = _WORKER_MODEL.sample(
        size, seed=np.random.default_rng(child), sampling_mode=sampling_mode
    )
    spans.append(
        make_span(
            "worker_compute",
            trace_id,
            span_id=span_id(trace_id, "worker_compute", index),
            parent_id=parent,
            start=start_wall,
            duration=time.perf_counter() - start,
            attrs={"chunk": index, "rows": size},
        )
    )
    payload: object = table
    if _WORKER_ENCODER is not None:
        start_wall = time.time()
        start = time.perf_counter()
        payload = _WORKER_ENCODER.encode(table)
        spans.append(
            make_span(
                "shm_encode",
                trace_id,
                span_id=span_id(trace_id, "shm_encode", index),
                parent_id=parent,
                start=start_wall,
                duration=time.perf_counter() - start,
                attrs={"chunk": index, "nbytes": int(getattr(payload, "nbytes", 0))},
            )
        )
    return TracedChunk(payload, spans)


class ChunkError(RuntimeError):
    """A chunk failed beyond its retry budget; carries the chunk's identity."""

    def __init__(self, index: int, size: int, message: str) -> None:
        super().__init__(f"chunk {index} ({size} rows) {message}")
        self.index = index
        self.size = size


@dataclass(frozen=True)
class ChunkPolicy:
    """Per-chunk resilience knobs for the sharded engine.

    timeout:
        Per-attempt deadline in seconds.  An attempt that exceeds it is
        abandoned (the worker keeps running; its late result is discarded)
        and the chunk is resubmitted.  ``None`` disables deadlines.
    max_retries:
        Resubmissions allowed per chunk for task failures and timeouts
        combined.  Worker-crash resubmissions do not count — those are the
        pool supervisor's budget (``max_pool_restarts``), not the chunk's.
    backoff:
        Base of the exponential backoff slept before retry ``k``:
        ``backoff * 2**(k-1)`` seconds.
    hedge_multiplier:
        Straggler hedging: once a chunk's in-flight time exceeds
        ``hedge_multiplier * median(completed chunk latencies)`` a duplicate
        attempt is submitted and the first success wins (both finishing is
        asserted byte-equal).  ``None`` disables hedging.
    min_hedge_latency:
        Floor (seconds) under which hedging never triggers, so micro-chunks
        do not hedge on scheduling noise.
    poll:
        Progress-check quantum (seconds) while waiting with deadlines or
        hedging enabled; with neither, waits block directly on the future.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.05
    hedge_multiplier: Optional[float] = None
    min_hedge_latency: float = 0.05
    poll: float = 0.01

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff}")
        if self.hedge_multiplier is not None and self.hedge_multiplier <= 0:
            raise ValueError(
                f"hedge_multiplier must be positive or None, got {self.hedge_multiplier}"
            )
        if self.poll <= 0:
            raise ValueError(f"poll must be positive, got {self.poll}")


@dataclass(frozen=True)
class ChunkFaultStats:
    """Cumulative fault-path counters of one :class:`ShardedSampler`."""

    #: Supervised executor rebuilds of the current pool (0 without a pool).
    pool_restarts: int
    #: Chunk resubmissions after task failures.
    chunk_retries: int
    #: Chunk attempts abandoned at their deadline (each also retries).
    chunk_timeouts: int
    #: Hedged duplicates submitted for straggler chunks.
    hedges: int
    #: Hedged duplicates that finished before their primary.
    hedge_wins: int

    def to_dict(self) -> dict:
        """The ``faults`` subtree of the unified stats namespace.

        Field names match :meth:`repro.serve.service.ServiceStats.to_dict`
        (which extends this subtree with the service-level counters).
        """
        return {
            "pool_restarts": self.pool_restarts,
            "chunk_retries": self.chunk_retries,
            "chunk_timeouts": self.chunk_timeouts,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
        }


class _ChunkRun:
    """Shared state of one resilient multi-chunk pass (request or micro-batch).

    Tracks completed-chunk latencies so hedging can compare each in-flight
    chunk against the run's median.  A run is consumed by a single thread
    (the request iterator or the service dispatcher); the sampler-level
    counters it updates are lock-protected.
    """

    def __init__(self, sampler: "ShardedSampler") -> None:
        self.sampler = sampler
        self.policy = sampler.chunk_policy
        self._latencies: List[float] = []

    def submit(
        self, index: int, size: int, child: np.random.SeedSequence, sampling_mode: str
    ) -> "_ChunkHandle":
        return _ChunkHandle(self, index, size, child, sampling_mode)

    def record_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def median_latency(self) -> Optional[float]:
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        return ordered[len(ordered) // 2]


class _ChunkHandle:
    """One chunk's fault-tolerant execution: deadline, retries, hedging."""

    def __init__(
        self,
        run: _ChunkRun,
        index: int,
        size: int,
        child: np.random.SeedSequence,
        sampling_mode: str,
    ) -> None:
        self._run = run
        self.index = index
        self.size = size
        self._child = child
        self._mode = sampling_mode
        self._attempts = 0  # failures + timeouts charged against max_retries
        self._tracer = run.sampler.tracer
        if self._tracer is not None:
            self._trace_id = trace_id_from_child(child)
            self._chunk_span = chunk_span_id(self._trace_id, index)
            self._created_wall = time.time()
        self._primary: SupervisedFuture = self._submit()
        self._primary_started = time.monotonic()
        self._primary_started_wall = time.time()
        self._hedge: Optional[SupervisedFuture] = None
        self._hedge_started = 0.0
        self._hedge_started_wall = 0.0
        self._consumed = False

    def _submit(self) -> SupervisedFuture:
        pool = self._run.sampler._require_pool()
        return pool.submit(_sample_chunk, self.size, self._child, self._mode)

    def _decode(self, result) -> Table:
        return self._run.sampler.decode_chunk(result)

    def cancel(self) -> None:
        self._consumed = True
        self._primary.cancel()
        self._run.sampler._abandon(self._primary)
        if self._hedge is not None:
            self._hedge.cancel()
            self._run.sampler._abandon(self._hedge)

    # -- the resolution loop -----------------------------------------------------
    def result(self) -> Table:
        """Block until the chunk resolves; retries/hedges per the policy.

        Raises :class:`ChunkError` (with the last underlying error chained)
        when the retry budget is exhausted, or lets
        :class:`~repro.utils.parallel.WorkerPoolBroken` pass through
        unwrapped — that is a pool-level verdict, not a chunk-level one.
        """
        policy = self._run.policy
        simple = policy.timeout is None and policy.hedge_multiplier is None
        while True:
            if simple:
                # No deadline, no hedging: block straight on the attempt.
                try:
                    table = self._decode(self._primary.result())
                except Exception as exc:
                    self._handle_failure(exc)
                    continue
                return self._finish(table, self._primary_started, hedged_win=False)

            outcome = self._poll_once()
            if outcome is not None:
                return outcome

    @staticmethod
    def _outcome(future: Optional[SupervisedFuture]):
        """``(done, error)`` without blocking; pending (or rebound) → not done."""
        if future is None or not future.done():
            return False, None
        try:
            return True, future.exception(0)
        except FuturesTimeoutError:  # rebound by a concurrent pool recovery
            return False, None

    def _poll_once(self) -> Optional[Table]:
        """One supervision tick: winners, failures, deadline, hedge trigger."""
        policy = self._run.policy
        now = time.monotonic()

        primary_done, primary_error = self._outcome(self._primary)
        hedge_done, hedge_error = self._outcome(self._hedge)

        # First-success-wins (and byte-equality assertion when both landed).
        if primary_done and primary_error is None:
            table = self._decode(self._primary.result(0))
            if hedge_done and hedge_error is None and self._hedge is not None:
                assert self._decode(self._hedge.result(0)) == table, (
                    f"hedged chunk {self.index} diverged from its primary — "
                    "the seed contract was violated"
                )
            if self._hedge is not None:
                self._hedge.cancel()
                self._run.sampler._abandon(self._hedge)
            return self._finish(table, self._primary_started, hedged_win=False)
        if hedge_done and hedge_error is None and self._hedge is not None:
            table = self._decode(self._hedge.result(0))
            self._primary.cancel()
            self._run.sampler._abandon(self._primary)
            return self._finish(table, self._hedge_started, hedged_win=True)

        # A failed hedge is simply dropped; a failed primary is promoted or
        # retried.
        if hedge_done and self._hedge is not None:
            self._hedge = None
        if primary_done:
            exc = primary_error
            assert exc is not None
            if self._hedge is not None:
                # The duplicate is already racing: make it the attempt.
                self._primary, self._hedge = self._hedge, None
                self._primary_started = self._hedge_started
                self._primary_started_wall = self._hedge_started_wall
            else:
                self._handle_failure(exc)
            return None

        # Deadline enforcement (per attempt).
        if policy.timeout is not None and now - self._primary_started > policy.timeout:
            if self._hedge is not None:
                # The younger duplicate inherits the attempt.
                self._primary.cancel()
                self._run.sampler._abandon(self._primary)
                self._primary, self._hedge = self._hedge, None
                self._primary_started = self._hedge_started
                self._primary_started_wall = self._hedge_started_wall
                return None
            self._run.sampler._count(timeouts=1)
            _LOG.warning(
                "chunk %d (%d rows) attempt %d timed out after %.3fs deadline; abandoning",
                self.index, self.size, self._attempts + 1, policy.timeout,
            )
            self._primary.cancel()
            self._run.sampler._abandon(self._primary)
            self._handle_failure(
                TimeoutError(f"attempt exceeded the {policy.timeout}s chunk deadline")
            )
            return None

        # Straggler hedging.
        if self._hedge is None and policy.hedge_multiplier is not None:
            median = self._run.median_latency()
            if median is not None:
                trigger = max(policy.min_hedge_latency, policy.hedge_multiplier * median)
                if now - self._primary_started > trigger:
                    self._hedge = self._submit()
                    self._hedge_started = time.monotonic()
                    self._hedge_started_wall = time.time()
                    self._run.sampler._count(hedges=1)
                    _LOG.info(
                        "chunk %d (%d rows) straggling %.3fs > %.3fs trigger; hedging",
                        self.index, self.size, now - self._primary_started, trigger,
                    )

        time.sleep(policy.poll)
        return None

    def _record_attempt_span(
        self, started_wall: float, started_at: float, *, error: Optional[str] = None
    ) -> None:
        if self._tracer is None:
            return
        attrs = {"chunk": self.index, "rows": self.size}
        if error is not None:
            attrs["error"] = error
        self._tracer.record_span(
            f"attempt[{self._attempts}]",
            self._trace_id,
            span_id=span_id(self._trace_id, "attempt", self.index, self._attempts),
            parent_id=self._chunk_span,
            start=started_wall,
            duration=time.monotonic() - started_at,
            attrs=attrs,
        )

    def _handle_failure(self, exc: BaseException) -> None:
        """Charge a failure against the retry budget and resubmit (or raise)."""
        if isinstance(exc, WorkerPoolBroken):
            raise exc  # pool-level: not retryable at chunk granularity
        policy = self._run.policy
        self._attempts += 1
        self._record_attempt_span(
            self._primary_started_wall, self._primary_started, error=str(exc)
        )
        if self._attempts > policy.max_retries:
            _LOG.error(
                "chunk %d (%d rows) exhausted its retry budget after attempt %d: %s",
                self.index, self.size, self._attempts, exc,
            )
            raise ChunkError(
                self.index, self.size,
                f"failed after {policy.max_retries} retr"
                f"{'y' if policy.max_retries == 1 else 'ies'}: {exc}",
            ) from exc
        self._run.sampler._count(retries=1)
        _LOG.warning(
            "chunk %d (%d rows) attempt %d failed: %s; retrying (%d/%d)",
            self.index, self.size, self._attempts, exc,
            self._attempts, policy.max_retries,
        )
        if policy.backoff > 0:
            time.sleep(policy.backoff * (2 ** (self._attempts - 1)))
        self._primary = self._submit()
        self._primary_started = time.monotonic()
        self._primary_started_wall = time.time()

    def _finish(self, table: Table, started_at: float, *, hedged_win: bool) -> Table:
        self._consumed = True
        self._run.record_latency(time.monotonic() - started_at)
        if hedged_win:
            self._run.sampler._count(hedge_wins=1)
        if self._tracer is not None:
            self._attempts += 1  # the successful attempt, for span naming
            started_wall = self._hedge_started_wall if hedged_win else self._primary_started_wall
            self._record_attempt_span(started_wall, started_at)
            self._attempts -= 1
            self._tracer.record_span(
                f"chunk[{self.index}]",
                self._trace_id,
                span_id=self._chunk_span,
                parent_id=request_span_id(self._trace_id),
                start=self._created_wall,
                duration=time.time() - self._created_wall,
                attrs={
                    "chunk": self.index,
                    "rows": self.size,
                    "retries": self._attempts,
                    "hedged_win": hedged_win,
                },
            )
        self._run.sampler._reap()
        return table


class ShardedSampler:
    """Fan a sampling request's chunks across a persistent process pool.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.base.Surrogate`.  The pool snapshots
        it when it starts; refit the model → :meth:`restart` the sampler.
    workers:
        Worker process count.  ``None`` resolves to the visible CPU budget
        (:func:`repro.utils.parallel.available_workers`, honouring
        ``REPRO_WORKERS``).  An explicit count is honoured exactly — the
        worker-count-invariance tests rely on being able to demand 4 workers
        on a one-core box.  ``1`` runs in-process with no pool at all.
    chunk_size:
        Rows per chunk (the sharding grain and the streaming memory bound).
    chunk_policy:
        Per-chunk deadline / retry / hedging policy (:class:`ChunkPolicy`);
        the default retries failures twice and disables deadlines/hedging.
    fault_plan:
        A :class:`~repro.serve.faults.FaultPlan` installed in every worker —
        deterministic chaos for tests, benchmarks and ``--fault-plan`` runs.
    max_pool_restarts:
        Supervised executor rebuilds tolerated before the pool declares
        itself broken (:class:`~repro.utils.parallel.WorkerPoolBroken`).
    transport:
        Chunk transport: ``"shm"`` (codes-only shared-memory segments),
        ``"pickle"`` (the chunk table as the task result), or ``None`` /
        ``"auto"`` — resolve from the ``REPRO_SHM`` environment variable,
        defaulting to shm where the platform supports it.  Output bytes are
        transport-invariant.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` the sampler's fault
        counters and transport gauges are registered in.  The owning
        service passes its registry down so the whole stack shares one;
        standalone samplers create their own.
    tracer:
        An optional :class:`~repro.obs.tracing.Tracer`.  When set, chunk
        handles record ``chunk[i]``/``attempt[j]`` spans, workers are
        started with tracing enabled (their ``worker_compute`` /
        ``shm_encode`` spans ride home on the task results), and the
        decode path records ``shm_decode`` spans.  ``None`` (the default)
        is a strict no-op on every path — bytes are identical either way.

    The sampler is a context manager; :meth:`close` shuts the pool down.
    """

    DEFAULT_CHUNK_SIZE = Surrogate.DEFAULT_SERVING_CHUNK

    def __init__(
        self,
        model: Surrogate,
        *,
        workers: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        chunk_policy: Optional[ChunkPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_pool_restarts: int = 5,
        transport: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        if not model.is_fitted:
            raise RuntimeError(
                f"{type(model).__name__} is not fitted; fit() it before serving"
            )
        self._model = model
        self.workers = available_workers(None) if workers is None else max(1, int(workers))
        self.chunk_size = int(chunk_size)
        self.chunk_policy = chunk_policy if chunk_policy is not None else ChunkPolicy()
        self.fault_plan = fault_plan
        self.max_pool_restarts = int(max_pool_restarts)
        self.transport = shm_transport.resolve_transport(transport)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self._shm_session: Optional[shm_transport.ShmSession] = None
        self._pool: Optional[WorkerPool] = None
        counter = self.metrics.counter
        self._fault_counters = {
            "retries": counter(
                "repro_serve_chunk_retries_total",
                "Chunk resubmissions after task failures.",
            ),
            "timeouts": counter(
                "repro_serve_chunk_timeouts_total",
                "Chunk attempts abandoned at their per-attempt deadline.",
            ),
            "hedges": counter(
                "repro_serve_chunk_hedges_total",
                "Hedged duplicates submitted for straggler chunks.",
            ),
            "hedge_wins": counter(
                "repro_serve_chunk_hedge_wins_total",
                "Hedged duplicates that finished before their primary.",
            ),
        }
        self._pool_restarts_gauge = self.metrics.gauge(
            "repro_serve_pool_restarts", "Supervised executor rebuilds, all pool generations."
        )
        #: Futures cancelled or discarded while possibly carrying an
        #: unconsumed shm envelope; reaped once they resolve.
        self._abandoned: List[SupervisedFuture] = []
        self._abandoned_lock = threading.Lock()
        #: Restarts of pools already torn down (restart / hot swap) — keeps
        #: the cumulative fault counters monotonic across pool generations.
        self._retired_restarts = 0

    # -- lifecycle ---------------------------------------------------------------
    @property
    def model(self) -> Surrogate:
        """The surrogate being served (the parent-process instance)."""
        return self._model

    @property
    def is_running(self) -> bool:
        return self._pool is not None

    @property
    def pool_broken(self) -> bool:
        """True when pool supervision gave up (the degraded-mode signal)."""
        return self._pool is not None and self._pool.is_broken

    @property
    def pool_pending_tasks(self) -> int:
        """Tasks submitted to the pool and not yet resolved (0 pool-free)."""
        return self._pool.pending_tasks if self._pool is not None else 0

    def start(self) -> "ShardedSampler":
        """Snapshot the model and spawn + warm the worker pool (idempotent).

        With ``workers=1`` there is nothing to spawn: the in-process path is
        the pool-free degenerate case of the same chunk plan.
        """
        if self.workers > 1 and self._pool is None:
            snapshot = self._model.serving_snapshot()
            shm_config = None
            if self.transport == "shm":
                self._shm_session = shm_transport.ShmSession(self._model, metrics=self.metrics)
                shm_config = self._shm_session.config
            self._pool = WorkerPool(
                self.workers,
                initializer=_init_worker,
                initargs=(
                    snapshot,
                    self.chunk_size,
                    self.fault_plan,
                    shm_config,
                    self.tracer is not None,
                ),
                max_restarts=self.max_pool_restarts,
            ).start()
        return self

    def restart(self) -> "ShardedSampler":
        """Tear the pool down and re-snapshot the model (e.g. after a refit)."""
        self.close()
        return self.start()

    def resize(self, workers: int) -> "ShardedSampler":
        """Change the worker count at a safe point (no chunks in flight).

        The autoscaling hook: the service dispatcher calls this between
        micro-batches.  Byte-safe by the sharding contract — chunk streams
        are worker-count-invariant, so a resized pool serves identical
        bytes.  The current pool (if any) is torn down and a fresh one is
        started at the new count (``1`` runs pool-free); the sampler is
        started afterwards either way.
        """
        workers = max(1, int(workers))
        if workers == self.workers:
            return self
        self.close()
        self.workers = workers
        return self.start()

    def swap_model(self, model: Surrogate) -> "ShardedSampler":
        """Replace the served model with a freshly fitted one (hot swap).

        Tears the pool down, installs ``model``, and — when a pool was
        running — starts a new one from the new model's snapshot.  Callers
        must not have chunks in flight (the service dispatcher swaps between
        micro-batches, which guarantees exactly that).  A broken pool is
        also cleared here: a swap is a rebuild, so the degraded-mode flag
        resets with it.
        """
        if not model.is_fitted:
            raise RuntimeError(
                f"{type(model).__name__} is not fitted; fit() it before serving"
            )
        was_running = self._pool is not None
        self.close()
        self._model = model
        if was_running:
            self.start()
        return self

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            self._retired_restarts += pool.restarts
            pool.close()  # waits for running tasks — segments are all spooled after
        self._reap(final=True)
        session, self._shm_session = self._shm_session, None
        if session is not None:
            session.close()  # sweep crash leftovers + remove the spool dir

    def __enter__(self) -> "ShardedSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ---------------------------------------------------------------
    def decode_chunk(self, result) -> Table:
        """Materialise a worker result: envelopes decode, tables pass through.

        Traced results (:class:`~repro.obs.tracing.TracedChunk`) are
        unwrapped first: their worker-side spans fold into the parent
        tracer and the payload proceeds exactly as if tracing were off —
        which is why enabling tracing cannot change served bytes.
        """
        spans = None
        if isinstance(result, TracedChunk):
            spans = result.spans
            result = result.payload
        tracer = self.tracer
        if tracer is not None and spans:
            tracer.extend(spans)
        if isinstance(result, ChunkEnvelope):
            assert self._shm_session is not None, "envelope received without a session"
            if tracer is not None and spans:
                first = spans[0]
                start_wall = time.time()
                start = time.perf_counter()
                table = self._shm_session.decoder.decode(result)
                tracer.record_span(
                    "shm_decode",
                    first.trace_id,
                    span_id=span_id(first.trace_id, "shm_decode", first.attrs.get("chunk", 0)),
                    parent_id=first.parent_id,
                    start=start_wall,
                    duration=time.perf_counter() - start,
                    attrs={"nbytes": int(result.nbytes), "rows": int(result.n_rows)},
                )
                return table
            return self._shm_session.decoder.decode(result)
        return result

    def _abandon(self, future: Optional[SupervisedFuture]) -> None:
        """Track a future whose (possible) envelope will never be decoded."""
        if future is None or self._shm_session is None:
            return
        with self._abandoned_lock:
            self._abandoned.append(future)

    def _reap(self, *, final: bool = False) -> None:
        """Discard segments of abandoned futures that have since resolved.

        Called opportunistically on every chunk completion and exhaustively
        at :meth:`close` (``final=True`` — by then the pool has drained, so
        every abandoned future is resolved one way or the other).
        """
        with self._abandoned_lock:
            pending, self._abandoned = self._abandoned, []
        if not pending:
            return
        session = self._shm_session
        still_pending: List[SupervisedFuture] = []
        for future in pending:
            if not future.done():
                if not final:
                    still_pending.append(future)
                continue
            try:
                result = future.result(0)
            except BaseException:
                continue  # failed or cancelled: no envelope to release
            if isinstance(result, TracedChunk):
                result = result.payload  # abandoned attempt: spans are dropped
            if session is not None and isinstance(result, ChunkEnvelope):
                session.decoder.discard(result)
        if still_pending:
            with self._abandoned_lock:
                self._abandoned.extend(still_pending)

    # -- fault accounting --------------------------------------------------------
    def _count(self, **deltas: int) -> None:
        for key, delta in deltas.items():
            self._fault_counters[key].inc(delta)

    def fault_stats(self) -> ChunkFaultStats:
        """Point-in-time fault counters (pool restarts + chunk resilience).

        Reads the sampler's metrics registry — the counters here and the
        ``repro_serve_chunk_*`` series on ``/metrics`` are the same
        numbers by construction.
        """
        restarts = self._retired_restarts + (
            self._pool.restarts if self._pool is not None else 0
        )
        self._pool_restarts_gauge.set(restarts)
        return ChunkFaultStats(
            pool_restarts=restarts,
            chunk_retries=int(self._fault_counters["retries"].total()),
            chunk_timeouts=int(self._fault_counters["timeouts"].total()),
            hedges=int(self._fault_counters["hedges"].total()),
            hedge_wins=int(self._fault_counters["hedge_wins"].total()),
        )

    # -- the chunk plan (the single source of the sharding arithmetic) -----------
    def chunk_plan(self, n: int, seed: SeedLike):
        """The request's chunk sizes and their ``SeedSequence`` child streams.

        Chunk ``i`` has ``min(chunk_size, n - i * chunk_size)`` rows and
        draws from the ``i``-th child of ``seed`` — exactly
        :meth:`Surrogate.sample_batches`'s plan.  Every consumer
        (:meth:`sample_batches` here, the service's micro-batcher) derives
        its chunks from this one method, so the byte-equality contract
        cannot drift between them.
        """
        n_chunks = -(-n // self.chunk_size) if n else 0
        sizes = [min(self.chunk_size, n - i * self.chunk_size) for i in range(n_chunks)]
        return sizes, spawn_seed_sequences(seed, n_chunks)

    def sample_chunk_local(
        self, size: int, child: np.random.SeedSequence, sampling_mode: str
    ) -> Table:
        """Generate one chunk in this process — the workers' exact call.

        (Minus fault injection: the harness targets pool workers only, and
        this is also the degraded-mode path the service falls back to.)
        """
        return self._model.sample(
            size, seed=np.random.default_rng(child), sampling_mode=sampling_mode
        )

    def assemble(
        self, chunks, *, seed: SeedLike = None, sampling_mode: str = "exact"
    ) -> Table:
        """One table from a request's chunk tables (0 / 1 / many)."""
        chunks = list(chunks)
        if not chunks:
            return self._model.sample(0, seed=seed, sampling_mode=sampling_mode)
        if len(chunks) == 1:
            return chunks[0]
        return Table.concat(chunks)

    # -- sampling ----------------------------------------------------------------
    def sample(
        self, n, *, seed: SeedLike = None, sampling_mode: Optional[str] = None
    ) -> Table:
        """Draw rows as one table, sharded across the pool.

        Accepts either a row count (with keyword ``seed``/``sampling_mode``,
        defaulting to the bit-reproducible ``"exact"`` mode) or a
        :class:`~repro.serve.api.RequestSpec`, which carries its own seed
        and mode (tenant/priority/deadline are serving-layer concerns and
        are ignored here).  Byte-identical to
        ``Table.concat(list(model.sample_batches(n, chunk_size, seed=seed,
        sampling_mode=sampling_mode)))`` for every worker count — and, by
        the fault-tolerance contract above, for every recovered fault.
        """
        if isinstance(n, RequestSpec):
            if seed is not None or sampling_mode is not None:
                raise TypeError("pass either a RequestSpec or bare arguments, not both")
            n, seed, sampling_mode = n.n, n.seed, n.sampling_mode
        elif sampling_mode is None:
            sampling_mode = "exact"
        return self.assemble(
            self.sample_batches(n, seed=seed, sampling_mode=sampling_mode),
            seed=seed,
            sampling_mode=sampling_mode,
        )

    def sample_batches(
        self, n: int, *, seed: SeedLike = None, sampling_mode: str = "exact"
    ) -> Iterator[Table]:
        """Stream ``n`` rows as chunk tables, generated by the pool in parallel.

        Chunks are yielded in index order.  Submission is windowed (a small
        multiple of the worker count), so the pool stays saturated while the
        parent holds only a bounded number of undelivered chunks.  A chunk
        that exhausts its resilience budget raises :class:`ChunkError` with
        its index/size after the window's in-flight siblings are cancelled.
        """
        self._check_request(n, sampling_mode)
        sizes, children = self.chunk_plan(n, seed)

        if self.workers == 1 or len(sizes) <= 1:
            def _generate_serial() -> Iterator[Table]:
                tracer = self.tracer
                for index, (size, child) in enumerate(zip(sizes, children)):
                    try:
                        if tracer is None:
                            yield self.sample_chunk_local(size, child, sampling_mode)
                            continue
                        trace_id = trace_id_from_child(child)
                        chunk_span = chunk_span_id(trace_id, index)
                        with tracer.span(
                            f"chunk[{index}]",
                            trace_id,
                            span_id=chunk_span,
                            parent_id=request_span_id(trace_id),
                            attrs={"chunk": index, "rows": size, "local": True},
                        ):
                            with tracer.span(
                                "worker_compute",
                                trace_id,
                                span_id=span_id(trace_id, "worker_compute", index),
                                parent_id=chunk_span,
                                attrs={"chunk": index, "rows": size, "local": True},
                            ):
                                table = self.sample_chunk_local(size, child, sampling_mode)
                        yield table
                    except Exception as exc:
                        raise ChunkError(index, size, f"failed: {exc}") from exc

            return _generate_serial()

        self.start()
        window = 2 * self.workers

        def _generate_sharded() -> Iterator[Table]:
            run = self.chunk_run()
            in_flight: deque = deque()
            try:
                for index, (size, child) in enumerate(zip(sizes, children)):
                    in_flight.append(run.submit(index, size, child, sampling_mode))
                    if len(in_flight) >= window:
                        yield in_flight.popleft().result()
                while in_flight:
                    yield in_flight.popleft().result()
            finally:
                # Error or early consumer exit: no abandoned siblings.
                for handle in in_flight:
                    handle.cancel()

        return _generate_sharded()

    def chunk_run(self) -> _ChunkRun:
        """A resilient chunk-submission context over the worker pool.

        The low-level entry the sampling service's micro-batcher uses to
        interleave the chunks of several coalesced requests in one pool
        pass: ``run.submit(index, size, child, mode)`` returns a handle whose
        ``result()`` applies the sampler's :class:`ChunkPolicy` (deadline,
        retries, hedging).  Requires ``workers > 1``.
        """
        if self.workers == 1:
            raise RuntimeError("chunk_run needs a worker pool (workers > 1)")
        self.start()
        return _ChunkRun(self)

    def submit_chunk(self, size: int, child: np.random.SeedSequence, sampling_mode: str):
        """Submit one raw chunk to the worker pool; returns its future.

        Bypasses the per-chunk resilience policy (the future is still
        supervised against worker death).  Prefer :meth:`chunk_run`.  Under
        the shm transport the future resolves to a
        :class:`~repro.serve.shm.ChunkEnvelope`; pass it through
        :meth:`decode_chunk` to materialise (and release) the chunk.
        """
        if self.workers == 1:
            raise RuntimeError("submit_chunk needs a worker pool (workers > 1)")
        self.start()
        assert self._pool is not None
        return self._pool.submit(_sample_chunk, size, child, sampling_mode)

    # -- helpers -----------------------------------------------------------------
    def _require_pool(self) -> WorkerPool:
        self.start()
        assert self._pool is not None
        return self._pool

    def _check_request(self, n: int, sampling_mode: str) -> None:
        if sampling_mode not in SAMPLING_MODES:
            raise ValueError(
                f"unknown sampling mode {sampling_mode!r}; use one of {SAMPLING_MODES}"
            )
        if n < 0:
            raise ValueError(f"cannot sample a negative number of rows ({n})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.is_running else "idle"
        return (
            f"ShardedSampler({type(self._model).__name__}, workers={self.workers}, "
            f"chunk_size={self.chunk_size}, {state})"
        )
