"""The sharded sampling engine: ``sample_batches`` chunks across a process pool.

The sharding contract
---------------------
:meth:`~repro.models.base.Surrogate.sample_batches` made chunks
embarrassingly parallel *by construction*: chunk ``i`` of a request draws
from the ``i``-th :class:`numpy.random.SeedSequence` child of the request
seed, so its bytes depend only on ``(model, seed, chunk_size, i)`` — never
on which process generates it, in what order, or how many sibling workers
exist.  :class:`ShardedSampler` exploits exactly that: it fans the chunks of
a request out across a persistent pool of worker processes (each holding a
deserialized snapshot of the fitted model with warmed serving caches) and
reassembles the chunks in index order.  The output is therefore

* byte-identical to ``Table.concat(list(model.sample_batches(n, chunk_size,
  seed=seed, sampling_mode=mode)))``, and
* byte-identical across **any** worker count, including the in-process
  ``workers=1`` path — proven for all five surrogates in both sampling
  modes by ``tests/test_serve_sharded.py``.

Workers are spawned once (:meth:`ShardedSampler.start`) and stay hot:
steady-state requests ship only ``(rows, seed-sequence, mode)`` descriptors
and receive chunk tables back.  Chunk submission is windowed, so a
million-row streaming request keeps at most a few chunks in flight and peak
parent memory stays bounded exactly as in the single-process streaming API.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

import numpy as np

from repro.models.base import SAMPLING_MODES, Surrogate
from repro.tabular.table import Table
from repro.utils.parallel import WorkerPool, available_workers
from repro.utils.rng import SeedLike, spawn_seed_sequences

__all__ = ["ShardedSampler"]

#: The worker-process model snapshot, set once by :func:`_init_worker`.
_WORKER_MODEL: Optional[Surrogate] = None


def _init_worker(snapshot: bytes, chunk_rows: int) -> None:
    """One-time worker setup: deserialize the model, warm its serving caches."""
    global _WORKER_MODEL
    model = Surrogate.from_snapshot(snapshot)
    model.warm_serving_caches(chunk_rows)
    _WORKER_MODEL = model


def _sample_chunk(size: int, child: np.random.SeedSequence, sampling_mode: str) -> Table:
    """Generate one chunk in the worker — the same call the parent would make."""
    assert _WORKER_MODEL is not None, "worker used before initialization"
    return _WORKER_MODEL.sample(
        size, seed=np.random.default_rng(child), sampling_mode=sampling_mode
    )


class ShardedSampler:
    """Fan a sampling request's chunks across a persistent process pool.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.base.Surrogate`.  The pool snapshots
        it when it starts; refit the model → :meth:`restart` the sampler.
    workers:
        Worker process count.  ``None`` resolves to the visible CPU budget
        (:func:`repro.utils.parallel.available_workers`, honouring
        ``REPRO_WORKERS``).  An explicit count is honoured exactly — the
        worker-count-invariance tests rely on being able to demand 4 workers
        on a one-core box.  ``1`` runs in-process with no pool at all.
    chunk_size:
        Rows per chunk (the sharding grain and the streaming memory bound).

    The sampler is a context manager; :meth:`close` shuts the pool down.
    """

    DEFAULT_CHUNK_SIZE = Surrogate.DEFAULT_SERVING_CHUNK

    def __init__(
        self,
        model: Surrogate,
        *,
        workers: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        if not model.is_fitted:
            raise RuntimeError(
                f"{type(model).__name__} is not fitted; fit() it before serving"
            )
        self._model = model
        self.workers = available_workers(None) if workers is None else max(1, int(workers))
        self.chunk_size = int(chunk_size)
        self._pool: Optional[WorkerPool] = None

    # -- lifecycle ---------------------------------------------------------------
    @property
    def model(self) -> Surrogate:
        """The surrogate being served (the parent-process instance)."""
        return self._model

    @property
    def is_running(self) -> bool:
        return self._pool is not None

    def start(self) -> "ShardedSampler":
        """Snapshot the model and spawn + warm the worker pool (idempotent).

        With ``workers=1`` there is nothing to spawn: the in-process path is
        the pool-free degenerate case of the same chunk plan.
        """
        if self.workers > 1 and self._pool is None:
            snapshot = self._model.serving_snapshot()
            self._pool = WorkerPool(
                self.workers,
                initializer=_init_worker,
                initargs=(snapshot, self.chunk_size),
            ).start()
        return self

    def restart(self) -> "ShardedSampler":
        """Tear the pool down and re-snapshot the model (e.g. after a refit)."""
        self.close()
        return self.start()

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "ShardedSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the chunk plan (the single source of the sharding arithmetic) -----------
    def chunk_plan(self, n: int, seed: SeedLike):
        """The request's chunk sizes and their ``SeedSequence`` child streams.

        Chunk ``i`` has ``min(chunk_size, n - i * chunk_size)`` rows and
        draws from the ``i``-th child of ``seed`` — exactly
        :meth:`Surrogate.sample_batches`'s plan.  Every consumer
        (:meth:`sample_batches` here, the service's micro-batcher) derives
        its chunks from this one method, so the byte-equality contract
        cannot drift between them.
        """
        n_chunks = -(-n // self.chunk_size) if n else 0
        sizes = [min(self.chunk_size, n - i * self.chunk_size) for i in range(n_chunks)]
        return sizes, spawn_seed_sequences(seed, n_chunks)

    def sample_chunk_local(
        self, size: int, child: np.random.SeedSequence, sampling_mode: str
    ) -> Table:
        """Generate one chunk in this process — the workers' exact call."""
        return self._model.sample(
            size, seed=np.random.default_rng(child), sampling_mode=sampling_mode
        )

    def assemble(
        self, chunks, *, seed: SeedLike = None, sampling_mode: str = "exact"
    ) -> Table:
        """One table from a request's chunk tables (0 / 1 / many)."""
        chunks = list(chunks)
        if not chunks:
            return self._model.sample(0, seed=seed, sampling_mode=sampling_mode)
        if len(chunks) == 1:
            return chunks[0]
        return Table.concat(chunks)

    # -- sampling ----------------------------------------------------------------
    def sample(self, n: int, *, seed: SeedLike = None, sampling_mode: str = "exact") -> Table:
        """Draw ``n`` rows as one table, sharded across the pool.

        Byte-identical to
        ``Table.concat(list(model.sample_batches(n, chunk_size, seed=seed,
        sampling_mode=sampling_mode)))`` for every worker count.
        """
        return self.assemble(
            self.sample_batches(n, seed=seed, sampling_mode=sampling_mode),
            seed=seed,
            sampling_mode=sampling_mode,
        )

    def sample_batches(
        self, n: int, *, seed: SeedLike = None, sampling_mode: str = "exact"
    ) -> Iterator[Table]:
        """Stream ``n`` rows as chunk tables, generated by the pool in parallel.

        Chunks are yielded in index order.  Submission is windowed (a small
        multiple of the worker count), so the pool stays saturated while the
        parent holds only a bounded number of undelivered chunks.
        """
        self._check_request(n, sampling_mode)
        sizes, children = self.chunk_plan(n, seed)

        if self.workers == 1 or len(sizes) <= 1:
            def _generate_serial() -> Iterator[Table]:
                for size, child in zip(sizes, children):
                    yield self.sample_chunk_local(size, child, sampling_mode)

            return _generate_serial()

        self.start()
        pool = self._pool
        assert pool is not None
        window = 2 * self.workers

        def _generate_sharded() -> Iterator[Table]:
            in_flight: deque = deque()
            for size, child in zip(sizes, children):
                in_flight.append(pool.submit(_sample_chunk, size, child, sampling_mode))
                if len(in_flight) >= window:
                    yield in_flight.popleft().result()
            while in_flight:
                yield in_flight.popleft().result()

        return _generate_sharded()

    def submit_chunk(self, size: int, child: np.random.SeedSequence, sampling_mode: str):
        """Submit one chunk to the worker pool; returns its future.

        The low-level entry the sampling service's micro-batcher uses to
        interleave the chunks of several coalesced requests in one pool
        pass.  Requires ``workers > 1`` (the pool is started on demand).
        """
        if self.workers == 1:
            raise RuntimeError("submit_chunk needs a worker pool (workers > 1)")
        self.start()
        assert self._pool is not None
        return self._pool.submit(_sample_chunk, size, child, sampling_mode)

    # -- helpers -----------------------------------------------------------------
    def _check_request(self, n: int, sampling_mode: str) -> None:
        if sampling_mode not in SAMPLING_MODES:
            raise ValueError(
                f"unknown sampling mode {sampling_mode!r}; use one of {SAMPLING_MODES}"
            )
        if n < 0:
            raise ValueError(f"cannot sample a negative number of rows ({n})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.is_running else "idle"
        return (
            f"ShardedSampler({type(self._model).__name__}, workers={self.workers}, "
            f"chunk_size={self.chunk_size}, {state})"
        )
