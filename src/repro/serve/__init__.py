"""repro.serve — the sharded, multi-process sampling service.

The serving layer the repo has been growing toward: PR 4 gave every
surrogate a relaxed ``sampling_mode="fast"`` and a bounded-memory
``sample_batches`` streaming API whose chunks each draw from their own
:class:`numpy.random.SeedSequence` child stream.  That made chunks
embarrassingly parallel *and* worker-count-invariant by construction; this
package is the machinery that cashes the invariant in:

:class:`~repro.serve.sharded.ShardedSampler`
    Fans a request's chunks across a persistent pool of worker processes
    (each holding a deserialized model snapshot with warmed serving caches)
    and streams the reassembled chunks back in order.  **The sharding
    contract:** output bytes for a given ``(seed, chunk_size)`` are
    identical for any worker count including 1, and equal to
    ``Table.concat(model.sample_batches(...))`` — sharding changes wall
    clock, never data.

:class:`~repro.serve.registry.ModelRegistry`
    Versioned storage of fitted-surrogate snapshots (``<root>/<name>/vN.pkl``)
    with warm-started packed serving caches at registration and load, so a
    freshly (re)started server answers its first request at steady-state
    latency.

:class:`~repro.serve.service.SamplingService`
    The front end: a thread-safe request queue with micro-batching (all
    requests queued at a dispatch tick coalesce into one sharded pool pass),
    per-request seeds (coalescing is invisible in the bytes), backpressure
    via a bounded in-flight row budget, and a stats endpoint (rows/s, queue
    depth, p50/p95 latency).

Quickstart::

    from repro.serve import ModelRegistry, SamplingService

    registry = ModelRegistry("models/")
    registry.register("tvae-prod", fitted_model)

    with SamplingService(registry.get("tvae-prod"), workers=4) as service:
        table = service.sample(1_000_000, seed=7)          # one request
        stats = service.stats()                            # rows/s, p95, ...

``repro-experiments serve`` (see :mod:`repro.experiments.cli`) drives the
whole stack end to end, and ``examples/serving_throughput.py`` is the
narrated version.  Throughput is guarded by the ``serve_sharded_*`` kernels
in ``benchmarks/BENCH_hotpaths.json``.
"""

from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    SampleRequest,
    SamplingService,
    ServiceOverloaded,
    ServiceStats,
)
from repro.serve.sharded import ShardedSampler

__all__ = [
    "ModelRegistry",
    "SampleRequest",
    "SamplingService",
    "ServiceOverloaded",
    "ServiceStats",
    "ShardedSampler",
]
