"""repro.serve — the sharded, multi-process sampling service.

The serving layer the repo has been growing toward: PR 4 gave every
surrogate a relaxed ``sampling_mode="fast"`` and a bounded-memory
``sample_batches`` streaming API whose chunks each draw from their own
:class:`numpy.random.SeedSequence` child stream.  That made chunks
embarrassingly parallel *and* worker-count-invariant by construction; this
package is the machinery that cashes the invariant in:

:class:`~repro.serve.sharded.ShardedSampler`
    Fans a request's chunks across a persistent pool of worker processes
    (each holding a deserialized model snapshot with warmed serving caches)
    and streams the reassembled chunks back in order.  **The sharding
    contract:** output bytes for a given ``(seed, chunk_size)`` are
    identical for any worker count including 1, and equal to
    ``Table.concat(model.sample_batches(...))`` — sharding changes wall
    clock, never data.

:class:`~repro.serve.registry.ModelRegistry`
    Versioned storage of fitted-surrogate snapshots (``<root>/<name>/vN.pkl``)
    with warm-started packed serving caches at registration and load, so a
    freshly (re)started server answers its first request at steady-state
    latency.

:class:`~repro.serve.service.SamplingService`
    The front end: a thread-safe request queue with micro-batching (all
    requests queued at a dispatch tick coalesce into one sharded pool pass),
    per-request seeds (coalescing is invisible in the bytes), backpressure
    via a bounded in-flight row budget, and a stats endpoint (rows/s, queue
    depth, p50/p95 latency, fault counters).

The fault-tolerance contract
----------------------------
Because chunk ``i`` draws only from the ``i``-th seed child, a re-executed
chunk regenerates **identical bytes** — so every recovery mechanism below is
proven by equality against the fault-free run (``tests/test_serve_faults.py``),
not by statistics:

* **Supervised worker pool** — a worker death (``BrokenProcessPool``)
  rebuilds the executor, re-runs the snapshot/warm-cache initializer, and
  resubmits every chunk queued behind the crash; ``max_pool_restarts``
  bounds the budget and restart counts are reported in the stats.
* **Per-chunk retry / timeout / hedging**
  (:class:`~repro.serve.sharded.ChunkPolicy`) — failed chunks are
  resubmitted with exponential backoff up to ``max_retries``; a chunk past
  its per-attempt ``timeout`` is abandoned and resubmitted; with
  ``hedge_multiplier`` set, a chunk slower than that multiple of the run's
  median chunk latency gets a duplicate raced against it, first success
  wins (both finishing is asserted byte-equal).  Exhausted budgets raise
  :class:`~repro.serve.sharded.ChunkError` carrying the chunk index/size,
  after in-flight siblings are cancelled.
* **Degraded mode** — if pool supervision itself gives up
  (:class:`~repro.utils.parallel.WorkerPoolBroken`), the service's
  dispatcher serves the affected micro-batch (and subsequent ones) with
  in-process serial generation: slower, byte-identical, zero queued
  requests lost.  ``ServiceStats.degraded_passes`` counts these.
* **Cancellation** — :meth:`~repro.serve.service.SampleRequest.cancel`
  releases an abandoned request's backpressure budget exactly once (the
  companion to ``result(timeout=...)``), so a stuck or slow request cannot
  consume admission capacity forever.
* **Deterministic chaos** — :class:`~repro.serve.faults.FaultPlan` injects
  worker kills, chunk delays and one-shot failures at named chunk indices
  through the worker initializer, with cross-process exactly-once token
  latches; ``repro-experiments serve --fault-plan "kill@1,delay@3:0.2"``
  replays a chaos run end to end.

Quickstart::

    from repro.serve import ModelRegistry, SamplingService

    registry = ModelRegistry("models/")
    registry.register("tvae-prod", fitted_model)

    with SamplingService(registry.get("tvae-prod"), workers=4) as service:
        table = service.sample(1_000_000, seed=7)          # one request
        stats = service.stats()                            # rows/s, p95, ...

``repro-experiments serve`` (see :mod:`repro.experiments.cli`) drives the
whole stack end to end, and ``examples/serving_throughput.py`` is the
narrated version.  Throughput is guarded by the ``serve_sharded_*`` kernels
in ``benchmarks/BENCH_hotpaths.json``; recovery overhead is guarded by
``serve_sharded_tvae_faulty`` (one injected worker kill per measured run).
"""

from repro.serve.faults import Fault, FaultPlan, InjectedFault
from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    SampleRequest,
    SamplingService,
    ServiceOverloaded,
    ServiceStats,
)
from repro.serve.sharded import ChunkError, ChunkFaultStats, ChunkPolicy, ShardedSampler

__all__ = [
    "ChunkError",
    "ChunkFaultStats",
    "ChunkPolicy",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "ModelRegistry",
    "SampleRequest",
    "SamplingService",
    "ServiceOverloaded",
    "ServiceStats",
    "ShardedSampler",
]
