"""repro.serve — the sharded, multi-process sampling service.

The serving layer the repo has been growing toward: PR 4 gave every
surrogate a relaxed ``sampling_mode="fast"`` and a bounded-memory
``sample_batches`` streaming API whose chunks each draw from their own
:class:`numpy.random.SeedSequence` child stream.  That made chunks
embarrassingly parallel *and* worker-count-invariant by construction; this
package is the machinery that cashes the invariant in:

:class:`~repro.serve.sharded.ShardedSampler`
    Fans a request's chunks across a persistent pool of worker processes
    (each holding a deserialized model snapshot with warmed serving caches)
    and streams the reassembled chunks back in order.  **The sharding
    contract:** output bytes for a given ``(seed, chunk_size)`` are
    identical for any worker count including 1, and equal to
    ``Table.concat(model.sample_batches(...))`` — sharding changes wall
    clock, never data.

:class:`~repro.serve.registry.ModelRegistry`
    Versioned storage of fitted-surrogate snapshots (``<root>/<name>/vN.pkl``)
    with warm-started packed serving caches at registration and load, so a
    freshly (re)started server answers its first request at steady-state
    latency.

:class:`~repro.serve.service.SamplingService`
    The front end: a thread-safe request queue with micro-batching (all
    requests queued at a dispatch tick coalesce into one sharded pool pass),
    per-request seeds (coalescing is invisible in the bytes), backpressure
    via a bounded in-flight row budget, and a stats endpoint (rows/s, queue
    depth, p50/p95 latency, fault counters).

The fault-tolerance contract
----------------------------
Because chunk ``i`` draws only from the ``i``-th seed child, a re-executed
chunk regenerates **identical bytes** — so every recovery mechanism below is
proven by equality against the fault-free run (``tests/test_serve_faults.py``),
not by statistics:

* **Supervised worker pool** — a worker death (``BrokenProcessPool``)
  rebuilds the executor, re-runs the snapshot/warm-cache initializer, and
  resubmits every chunk queued behind the crash; ``max_pool_restarts``
  bounds the budget and restart counts are reported in the stats.
* **Per-chunk retry / timeout / hedging**
  (:class:`~repro.serve.sharded.ChunkPolicy`) — failed chunks are
  resubmitted with exponential backoff up to ``max_retries``; a chunk past
  its per-attempt ``timeout`` is abandoned and resubmitted; with
  ``hedge_multiplier`` set, a chunk slower than that multiple of the run's
  median chunk latency gets a duplicate raced against it, first success
  wins (both finishing is asserted byte-equal).  Exhausted budgets raise
  :class:`~repro.serve.sharded.ChunkError` carrying the chunk index/size,
  after in-flight siblings are cancelled.
* **Degraded mode** — if pool supervision itself gives up
  (:class:`~repro.utils.parallel.WorkerPoolBroken`), the service's
  dispatcher serves the affected micro-batch (and subsequent ones) with
  in-process serial generation: slower, byte-identical, zero queued
  requests lost.  ``ServiceStats.degraded_passes`` counts these.
* **Cancellation** — :meth:`~repro.serve.service.SampleRequest.cancel`
  releases an abandoned request's backpressure budget exactly once (the
  companion to ``result(timeout=...)``), so a stuck or slow request cannot
  consume admission capacity forever.
* **Deterministic chaos** — :class:`~repro.serve.faults.FaultPlan` injects
  worker kills, chunk delays and one-shot failures at named chunk indices
  through the worker initializer, with cross-process exactly-once token
  latches; ``repro-experiments serve --fault-plan "kill@1,delay@3:0.2"``
  replays a chaos run end to end.

The chunk transport (the serving data plane)
--------------------------------------------
Chunks cross the worker pool as **codes, not pickles**: under the
shared-memory transport (:mod:`repro.serve.shm`, the default where
``multiprocessing.shared_memory`` works) a worker writes each chunk's
column buffers — ``float64`` numericals, ``int32`` dictionary codes —
into a named segment and sends back only a tiny
:class:`~repro.serve.shm.ChunkEnvelope`; the parent reassembles the table
as zero-copy views over the mapping (vocabularies travel once with the
model snapshot, never per chunk).  Segment lifecycle is owned end to end:
decode unlinks, abandoned attempts (timeouts, hedge losers, cancels) are
reaped, and a spool-directory sweep collects anything a crashed worker
left behind — ``tests/test_serve_shm.py`` proves zero segments survive
fault-injected runs.  ``REPRO_SHM=shm|pickle|auto`` (or
``ShardedSampler(transport=...)``) selects the transport; bytes are
transport-invariant by the sharding contract, and
``benchmarks/BENCH_hotpaths.json`` records the per-chunk IPC-bytes
reduction under the ``serve_sharded_shm`` kernel.

Quickstart::

    from repro.serve import ModelRegistry, SamplingService

    registry = ModelRegistry("models/")
    registry.register("tvae-prod", fitted_model)

    with SamplingService(registry.get("tvae-prod"), workers=4) as service:
        table = service.sample(1_000_000, seed=7)          # one request
        stats = service.stats()                            # rows/s, p95, ...

The serving API, request by request
----------------------------------
Every entry point accepts the same frozen
:class:`~repro.serve.api.RequestSpec` — ``(n, seed, sampling_mode, tenant,
priority, deadline)`` — and serves bytes that depend only on
``(n, seed, sampling_mode)``; tenancy, priority and deadlines steer *when*
a request is served, never *what*:

:class:`~repro.serve.api.RequestSpec`
    The unified request contract.  ``priority`` is one of the three
    :data:`~repro.serve.api.PRIORITY_CLASSES` (``interactive`` weight 4 >
    ``normal`` 2 > ``batch`` 1); the dispatcher runs start-time weighted
    fair queueing over ``(tenant, priority)`` flows, so a bursty tenant
    cannot starve a steady one.  The legacy positional
    ``submit(n, seed=..., sampling_mode=...)`` surface still works and
    emits a :class:`DeprecationWarning`.
:class:`~repro.serve.admission.AdmissionPolicy` /
:class:`~repro.serve.admission.AdmissionRejected`
    SLO-aware admission control: reject (instead of queue) on queue-depth
    or backlog-row caps, or when the EMA service-rate estimator says the
    request's ``deadline`` is already blown.  Rejections carry a
    ``reason`` and ``retry_after`` hint; the HTTP front door maps them to
    ``429`` + ``Retry-After``.  Once admitted, a request is always served.
:class:`~repro.serve.admission.AutoscalePolicy`
    Queue-depth-driven autoscaling: the dispatcher resizes the worker pool
    between ``min_workers``/``max_workers`` with demand.  Byte-safe by the
    sharding contract — a resize changes wall clock, never data.
:class:`~repro.serve.http.FrontDoor`
    The async multi-tenant front door: routes requests across named
    backend services (registry stages ``prod``/``canary`` serving
    concurrently) via a :class:`~repro.scheduler.broker.BackendRouter`
    driven by the scheduler's ``LeastLoadedBroker``, and optionally speaks
    stdlib-only HTTP (``POST /sample``, ``GET /stats|/models|/healthz``)
    from a background asyncio thread.
:func:`~repro.serve.api.table_fingerprint`
    The byte contract: a SHA-256 over schema + exact cell bytes, shared by
    scenario reports, HTTP ``fingerprint_only`` responses and the CI
    front-door smoke.

Stats are one tree everywhere: :meth:`ServiceStats.to_dict` (throughput /
queue / latency / workers / faults / admission / tenants) is what the CLI
``--json`` payloads, HTTP ``GET /stats`` and ``ScenarioReport`` timing
layers all embed.

Observability (the ``repro.obs`` plane)
---------------------------------------
Every layer above writes into one
:class:`~repro.obs.metrics.MetricsRegistry` per service (pass
``SamplingService(metrics=...)`` to share one), and the stats tree is a
*view* of that registry — the numbers on ``/stats`` and ``/metrics`` are
the same by construction.  The serving metric names:

* requests/rows — ``repro_serve_requests_total{tenant}``,
  ``repro_serve_request_errors_total``, ``repro_serve_rows_total{tenant}``,
  ``repro_serve_batches_total``;
* flow latency — ``repro_serve_request_latency_seconds{tenant,priority}``
  and ``repro_serve_queue_wait_seconds{tenant,priority}`` (histograms over
  the log-spaced :data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS`);
* levels — ``repro_serve_queue_depth``, ``repro_serve_inflight_rows``,
  ``repro_serve_workers``, ``repro_serve_degraded``,
  ``repro_serve_pool_pending_tasks``, ``repro_serve_pool_restarts``;
* faults — ``repro_serve_chunk_{retries,timeouts,hedges,hedge_wins}_total``,
  ``repro_serve_degraded_passes_total``,
  ``repro_serve_cancelled_requests_total``;
* transport — ``repro_serve_shm_{chunks,bytes,discarded,sweeps,swept_segments}_total``;
* control — ``repro_serve_admission_{admitted,rejected}_total`` (rejects by
  ``reason``), ``repro_serve_scale_{ups,downs}_total``,
  ``repro_serve_model_swaps_total``.

``GET /metrics`` on the front door serves the Prometheus text page over
every backend (series tagged ``backend="<name>"``)::

    curl -s http://127.0.0.1:8080/metrics | grep repro_serve_requests_total

Tracing is request-scoped and seed-derived: install a
:class:`~repro.obs.tracing.Tracer` (``SamplingService(tracer=...)``) and
each request records the span taxonomy ``request`` → ``admission`` /
``queue_wait`` / ``dispatch`` / ``chunk[i]`` → ``attempt[j]`` /
``worker_compute`` / ``shm_encode`` / ``shm_decode`` / ``assemble`` /
``deliver``.  Trace and span IDs hash the request seed's
``SeedSequence`` identity (the same trick the fault plane uses), so
worker-side spans stitch under the parent trace with no context header —
and tracing never touches served bytes (scenario fingerprints are
asserted identical with it on or off).  Export from the CLI::

    repro-experiments serve --trace-out trace.json      # Perfetto-loadable
    repro-experiments scenario chaos-drift --trace-out spans.jsonl

Enabled-tracing overhead is gated at ≤5% by the ``serve_traced`` kernel in
``benchmarks/BENCH_hotpaths.json``; ``examples/tracing_demo.py`` is the
narrated walkthrough.

``repro-experiments serve`` (see :mod:`repro.experiments.cli`) drives the
whole stack end to end (``--http`` adds a loopback front-door round-trip),
and ``examples/serving_throughput.py`` is the narrated version.
Throughput is guarded by the ``serve_sharded_*`` kernels in
``benchmarks/BENCH_hotpaths.json``; recovery overhead by
``serve_sharded_tvae_faulty`` (one injected worker kill per measured run);
front-door dispatch by ``serve_front_door``.
"""

from repro.serve.admission import AdmissionPolicy, AdmissionRejected, AutoscalePolicy
from repro.serve.api import (
    PRIORITY_CLASSES,
    PriorityClass,
    RequestSpec,
    priority_weight,
    table_fingerprint,
)
from repro.serve.faults import Fault, FaultPlan, InjectedFault
from repro.serve.http import FrontDoor, FrontDoorTicket
from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    SampleRequest,
    SamplingService,
    ServiceOverloaded,
    ServiceStats,
)
from repro.serve.sharded import ChunkError, ChunkFaultStats, ChunkPolicy, ShardedSampler

__all__ = [
    "AdmissionPolicy",
    "AdmissionRejected",
    "AutoscalePolicy",
    "ChunkError",
    "ChunkFaultStats",
    "ChunkPolicy",
    "Fault",
    "FaultPlan",
    "FrontDoor",
    "FrontDoorTicket",
    "InjectedFault",
    "ModelRegistry",
    "PRIORITY_CLASSES",
    "PriorityClass",
    "RequestSpec",
    "SampleRequest",
    "SamplingService",
    "ServiceOverloaded",
    "ServiceStats",
    "ShardedSampler",
    "priority_weight",
    "table_fingerprint",
]
