"""SLO-aware admission control and queue-depth autoscaling policies.

Admission control generalizes the service's original row-budget overload
signal: instead of only *blocking* when the in-flight budget fills, the
service can *reject* a request up front — the honest answer under sustained
overload, and the one an HTTP front door can turn into a ``429``.  Three
independent signals, each optional:

* **queue depth** — reject when the number of admitted-but-undelivered
  requests has reached ``max_queue_depth``;
* **backlog rows** — reject when admitting the request would push the
  admitted-but-undelivered row count past ``max_backlog_rows``;
* **deadline (SLO)** — reject a request carrying a
  :attr:`~repro.serve.api.RequestSpec.deadline` whose *estimated* queue
  wait (backlog rows / observed service rate, an EMA the dispatcher feeds)
  already exceeds that deadline.  No rate observed yet → no deadline
  rejections (the estimator never guesses).

The determinism contract: admission decides *whether* a request enters the
queue, never *what* it returns — an admitted request is always served with
its own seed's bytes.  Scenario replays therefore stay fingerprint-identical
as long as their admission bounds are generous enough to admit everything,
which the catalog specs guarantee by construction.

:class:`AutoscalePolicy` is the sibling knob set for queue-depth-driven
worker scaling: the dispatcher resizes the pool toward
``ceil(demand_rows / rows_per_worker)`` within ``[min_workers,
max_workers]`` at its safe points (between micro-batches).  Scaling up is
immediate; scaling down waits for ``shrink_patience`` consecutive
under-demand ticks so a lull between bursts does not thrash the pool.
Resizing never changes output bytes — the sharding contract makes chunk
streams worker-count-invariant.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.api import RequestSpec

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "AutoscalePolicy",
    "ServiceOverloaded",
]


class ServiceOverloaded(RuntimeError):
    """Raised by non-blocking submission when the in-flight budget is full."""


class AdmissionRejected(ServiceOverloaded):
    """An admission-control rejection; carries the reason and retry hint.

    Subclasses :class:`ServiceOverloaded` so existing overload handling
    (``except ServiceOverloaded``) keeps working; the HTTP front door maps
    it to ``429 Too Many Requests`` with a ``Retry-After`` hint.
    """

    def __init__(self, message: str, *, reason: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: One of ``"queue_depth"`` / ``"backlog_rows"`` / ``"deadline"``.
        self.reason = reason
        #: Suggested client backoff in seconds (the HTTP ``Retry-After``).
        self.retry_after = retry_after


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounds at which the service rejects instead of queueing.

    All three signals default to disabled; an all-``None`` policy admits
    everything (the pre-admission-control behaviour).
    """

    #: Reject when this many requests are already admitted-but-undelivered.
    max_queue_depth: Optional[int] = None
    #: Reject when admitting would exceed this many undelivered rows.
    max_backlog_rows: Optional[int] = None
    #: Floor (rows/s) the wait estimator never drops under, so one slow
    #: batch cannot make the estimator reject everything forever.
    min_rate_floor: float = 1.0
    #: Smoothing factor of the service-rate EMA fed by the dispatcher.
    rate_smoothing: float = 0.3

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be non-negative or None, got {self.max_queue_depth}"
            )
        if self.max_backlog_rows is not None and self.max_backlog_rows < 0:
            raise ValueError(
                f"max_backlog_rows must be non-negative or None, got {self.max_backlog_rows}"
            )
        if self.min_rate_floor <= 0:
            raise ValueError(f"min_rate_floor must be positive, got {self.min_rate_floor}")
        if not 0 < self.rate_smoothing <= 1:
            raise ValueError(
                f"rate_smoothing must be in (0, 1], got {self.rate_smoothing}"
            )


class AdmissionController:
    """Apply an :class:`AdmissionPolicy`; keep the admission counters.

    The service consults :meth:`check` (under its own queue lock) before
    admitting, and feeds :meth:`observe_batch` after every served
    micro-batch so the deadline estimator tracks the real service rate.
    """

    def __init__(self, policy: AdmissionPolicy, metrics: Optional[MetricsRegistry] = None) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._rate: Optional[float] = None  # EMA rows/s; None until observed
        registry = metrics if metrics is not None else MetricsRegistry()
        self._m_admitted = registry.counter(
            "repro_serve_admission_admitted_total", "Requests admitted to the queue."
        )
        self._m_rejected = registry.counter(
            "repro_serve_admission_rejected_total",
            "Requests rejected at admission, by reason.",
            labels=("reason",),
        )

    # -- the decision ------------------------------------------------------------
    def check(self, spec: RequestSpec, *, pending_requests: int, backlog_rows: int) -> None:
        """Admit (count + return) or reject (raise :class:`AdmissionRejected`).

        ``pending_requests`` / ``backlog_rows`` are the service's
        admitted-but-undelivered request and row counts at decision time.
        """
        policy = self.policy
        if (
            policy.max_queue_depth is not None
            and pending_requests >= policy.max_queue_depth
        ):
            self._reject(
                "queue_depth",
                f"queue depth {pending_requests} at its limit "
                f"({policy.max_queue_depth}); retry later",
                retry_after=self._drain_estimate(backlog_rows),
            )
        if (
            policy.max_backlog_rows is not None
            and backlog_rows + spec.n > policy.max_backlog_rows
        ):
            self._reject(
                "backlog_rows",
                f"backlog of {backlog_rows} rows cannot absorb {spec.n} more "
                f"(limit {policy.max_backlog_rows}); retry later",
                retry_after=self._drain_estimate(backlog_rows),
            )
        if spec.deadline is not None:
            wait = self.estimated_wait(backlog_rows)
            if wait is not None and wait > spec.deadline:
                self._reject(
                    "deadline",
                    f"estimated queue wait {wait:.2f}s exceeds the request's "
                    f"{spec.deadline:.2f}s deadline",
                    retry_after=wait,
                )
        self._m_admitted.inc()

    def _reject(self, reason: str, message: str, *, retry_after: float) -> None:
        self._m_rejected.inc(reason=reason)
        raise AdmissionRejected(
            message, reason=reason, retry_after=max(0.1, round(retry_after, 3))
        )

    # -- the rate estimator ------------------------------------------------------
    def observe_batch(self, rows: int, seconds: float) -> None:
        """Fold one served micro-batch into the service-rate EMA."""
        if rows <= 0 or seconds <= 0:
            return
        rate = rows / seconds
        with self._lock:
            alpha = self.policy.rate_smoothing
            self._rate = rate if self._rate is None else alpha * rate + (1 - alpha) * self._rate

    def estimated_wait(self, backlog_rows: int) -> Optional[float]:
        """Estimated seconds to drain ``backlog_rows``; None before any data."""
        with self._lock:
            rate = self._rate
        if rate is None:
            return None
        return backlog_rows / max(rate, self.policy.min_rate_floor)

    def _drain_estimate(self, backlog_rows: int) -> float:
        wait = self.estimated_wait(backlog_rows)
        return wait if wait is not None else 1.0

    # -- reporting ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Point-in-time admission counters (stable field names).

        Reads the metrics registry — these numbers and the
        ``repro_serve_admission_*`` series on ``/metrics`` are the same by
        construction.
        """
        return {
            "admitted": int(self._m_admitted.total()),
            "rejected": int(self._m_rejected.total()),
            "rejected_queue_depth": int(self._m_rejected.value(reason="queue_depth")),
            "rejected_backlog_rows": int(self._m_rejected.value(reason="backlog_rows")),
            "rejected_deadline": int(self._m_rejected.value(reason="deadline")),
        }


@dataclass(frozen=True)
class AutoscalePolicy:
    """Queue-depth-driven worker scaling bounds for the service dispatcher."""

    min_workers: int = 1
    max_workers: int = 4
    #: Demand grain: the target worker count is
    #: ``ceil(demand_rows / rows_per_worker)`` clamped to the bounds above.
    rows_per_worker: int = 50_000
    #: Consecutive under-demand dispatch ticks required before shrinking.
    shrink_patience: int = 3

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be at least 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.rows_per_worker < 1:
            raise ValueError(
                f"rows_per_worker must be positive, got {self.rows_per_worker}"
            )
        if self.shrink_patience < 1:
            raise ValueError(
                f"shrink_patience must be at least 1, got {self.shrink_patience}"
            )

    def target_workers(self, demand_rows: int) -> int:
        """The worker count the demand calls for, clamped to the bounds."""
        wanted = -(-max(0, demand_rows) // self.rows_per_worker) if demand_rows else 0
        return max(self.min_workers, min(self.max_workers, wanted))
