"""Versioned storage for fitted surrogate snapshots.

A serving deployment never retrains in the request path: models are fitted
offline, registered under a name, and served from their snapshot.  The
registry is deliberately plain — a directory tree

.. code-block:: text

    <root>/<name>/v1.pkl
    <root>/<name>/v2.pkl
    ...

with monotonically increasing versions per name, the highest version being
"latest".  Snapshots go through :meth:`Surrogate.save`/:meth:`Surrogate.load`
(transient serving caches are dropped on disk), and every model the registry
hands out has been **warm-started**: its packed serving caches are built and
pre-sized for the serving chunk size at registration / load time
(:meth:`~repro.models.base.Surrogate.warm_serving_caches`), so the first
request against a registered model pays the same latency as the thousandth.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.models.base import Surrogate

__all__ = ["ModelRegistry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._+-]*$")
_VERSION_RE = re.compile(r"^v(\d+)$")


class ModelRegistry:
    """Store and serve fitted surrogates under ``name``/``version``.

    Loaded models are cached in memory per ``(name, version)``, so repeated
    :meth:`get` calls (and the sampling service resolving its model on every
    restart) hit the disk once.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        warm_chunk_rows: int = Surrogate.DEFAULT_SERVING_CHUNK,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.warm_chunk_rows = int(warm_chunk_rows)
        #: ``(name, version) -> (model, warmed?)`` — the flag lets a later
        #: ``warm=True`` access warm a model that entered the cache cold.
        self._cache: Dict[Tuple[str, str], Tuple[Surrogate, bool]] = {}

    # -- write side --------------------------------------------------------------
    def register(self, name: str, model: Surrogate, *, warm: bool = True) -> str:
        """Snapshot a fitted ``model`` as the next version of ``name``.

        Returns the assigned version (``"v1"``, ``"v2"``, ...).  With
        ``warm=True`` (the default) the in-memory instance is warm-started
        before it is cached, so serving can begin immediately with flat
        first-request latency.
        """
        self._check_name(name)
        if not model.is_fitted:
            raise RuntimeError(
                f"cannot register an unfitted {type(model).__name__} as {name!r}"
            )
        if warm:
            model.warm_serving_caches(self.warm_chunk_rows)
        version = f"v{self._latest_number(name) + 1}"
        path = self.path_of(name, version)
        model.save(path)
        self._cache[(name, version)] = (model, warm)
        return version

    # -- read side ---------------------------------------------------------------
    def get(self, name: str, version: Optional[str] = None, *, warm: bool = True) -> Surrogate:
        """The model registered as ``name``/``version`` (latest when omitted).

        Loads from disk on first access (warm-starting the caches the pickle
        dropped), then serves from the in-memory cache.
        """
        version = self._resolve_version(name, version)
        key = (name, version)
        cached = self._cache.get(key)
        if cached is None:
            model, warmed = Surrogate.load(self.path_of(name, version)), False
        else:
            model, warmed = cached
        if warm and not warmed:
            model.warm_serving_caches(self.warm_chunk_rows)
            warmed = True
        self._cache[key] = (model, warmed)
        return model

    def names(self) -> List[str]:
        """Registered model names, sorted."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self._version_numbers(entry.name)
        )

    def versions(self, name: str) -> List[str]:
        """Versions registered under ``name``, oldest first."""
        return [f"v{num}" for num in self._version_numbers(name)]

    def latest_version(self, name: str) -> str:
        """The highest version registered under ``name``."""
        return self._resolve_version(name, None)

    def path_of(self, name: str, version: str) -> Path:
        """Filesystem path of one snapshot."""
        return self.root / name / f"{version}.pkl"

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '.', '_', '+', '-'"
            )

    def _version_numbers(self, name: str) -> List[int]:
        directory = self.root / name
        if not directory.is_dir():
            return []
        numbers = []
        for path in directory.glob("v*.pkl"):
            match = _VERSION_RE.match(path.stem)
            if match:
                numbers.append(int(match.group(1)))
        return sorted(numbers)

    def _latest_number(self, name: str) -> int:
        numbers = self._version_numbers(name)
        return numbers[-1] if numbers else 0

    def _resolve_version(self, name: str, version: Optional[str]) -> str:
        self._check_name(name)
        numbers = self._version_numbers(name)
        if version is None:
            if not numbers:
                raise KeyError(f"no model registered under {name!r}")
            return f"v{numbers[-1]}"
        if not _VERSION_RE.match(version) or int(version[1:]) not in numbers:
            known = ", ".join(f"v{n}" for n in numbers) or "none"
            raise KeyError(f"{name!r} has no version {version!r} (known: {known})")
        return version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry({str(self.root)!r}, models={self.names()})"
