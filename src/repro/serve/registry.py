"""Versioned storage for fitted surrogate snapshots.

A serving deployment never retrains in the request path: models are fitted
offline, registered under a name, and served from their snapshot.  The
registry is deliberately plain — a directory tree

.. code-block:: text

    <root>/<name>/v1.pkl
    <root>/<name>/v1.pkl.sha256
    <root>/<name>/v2.pkl
    <root>/<name>/v2.pkl.sha256
    <root>/<name>/stages.json

with monotonically increasing versions per name, the highest version being
"latest".  Every model the registry hands out has been **warm-started**: its
packed serving caches are built and pre-sized for the serving chunk size at
registration / load time
(:meth:`~repro.models.base.Surrogate.warm_serving_caches`), so the first
request against a registered model pays the same latency as the thousandth.

Durability contract
-------------------
Snapshots are written *atomically*: the pickle payload lands in a temporary
file in the destination directory and is moved into place with
:func:`os.replace`, so a crash mid-write can never leave a half-written
``vN.pkl`` behind — a version either exists completely or not at all.  Each
snapshot carries a ``vN.pkl.sha256`` sidecar (hex digest of the payload)
that is verified on every disk load; a digest mismatch, or a payload that
fails to unpickle, raises :class:`RegistryCorrupted` naming the snapshot
instead of surfacing a raw ``pickle`` error.  Sidecar-less snapshots
(pre-integrity registries) load unverified for backward compatibility.

Stages
------
Versions are immutable; *stages* are mutable aliases over them — the
rollout states a serving fleet needs (``prod``, ``canary``, or any other
label).  ``stages.json`` maps stage → version and is itself written
atomically, so a promotion is a single atomic pointer swap:
``registry.get(name, "prod")`` resolves through it.  The canary loop of
:mod:`repro.scenarios` drives exactly this surface: register under
``canary``, compare, then :meth:`ModelRegistry.promote` or
:meth:`ModelRegistry.clear_stage`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.models.base import Surrogate

__all__ = ["ModelRegistry", "RegistryCorrupted"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._+-]*$")
_VERSION_RE = re.compile(r"^v(\d+)$")
_STAGE_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")


class RegistryCorrupted(RuntimeError):
    """A snapshot on disk failed integrity verification or unpickling."""


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp + ``os.replace``."""
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with tmp.open("wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()


class ModelRegistry:
    """Store and serve fitted surrogates under ``name``/``version``.

    Loaded models are cached in memory per ``(name, version)``, so repeated
    :meth:`get` calls (and the sampling service resolving its model on every
    restart) hit the disk once.  ``version`` arguments accept a stage alias
    (``"prod"``, ``"canary"``, ...) anywhere a literal ``"vN"`` is accepted.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        warm_chunk_rows: int = Surrogate.DEFAULT_SERVING_CHUNK,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.warm_chunk_rows = int(warm_chunk_rows)
        #: ``(name, version) -> (model, warmed?)`` — the flag lets a later
        #: ``warm=True`` access warm a model that entered the cache cold.
        self._cache: Dict[Tuple[str, str], Tuple[Surrogate, bool]] = {}

    # -- write side --------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Surrogate,
        *,
        warm: bool = True,
        stage: Optional[str] = None,
    ) -> str:
        """Snapshot a fitted ``model`` as the next version of ``name``.

        Returns the assigned version (``"v1"``, ``"v2"``, ...).  The snapshot
        is written atomically with its SHA-256 sidecar.  With ``warm=True``
        (the default) the in-memory instance is warm-started before it is
        cached, so serving can begin immediately with flat first-request
        latency.  ``stage`` optionally points that stage alias at the new
        version in the same call (e.g. ``stage="canary"``).
        """
        self._check_name(name)
        if not model.is_fitted:
            raise RuntimeError(
                f"cannot register an unfitted {type(model).__name__} as {name!r}"
            )
        if warm:
            model.warm_serving_caches(self.warm_chunk_rows)
        version = f"v{self._latest_number(name) + 1}"
        path = self.path_of(name, version)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = model.serving_snapshot()
        _atomic_write_bytes(path, payload)
        _atomic_write_bytes(
            self.digest_path_of(name, version), (_sha256(payload) + "\n").encode("ascii")
        )
        self._cache[(name, version)] = (model, warm)
        if stage is not None:
            self.set_stage(name, stage, version)
        return version

    # -- stages ------------------------------------------------------------------
    def stages(self, name: str) -> Dict[str, str]:
        """The ``stage -> version`` alias map of ``name`` (may be empty)."""
        self._check_name(name)
        path = self.root / name / "stages.json"
        if not path.exists():
            return {}
        with path.open("r", encoding="utf-8") as fh:
            return dict(json.load(fh))

    def stage_version(self, name: str, stage: str) -> Optional[str]:
        """The version a stage points at, or ``None`` when unset."""
        return self.stages(name).get(self._check_stage(stage))

    def set_stage(self, name: str, stage: str, version: str) -> None:
        """Point ``stage`` at an existing ``version`` (atomic pointer swap)."""
        stage = self._check_stage(stage)
        version = self._resolve_version(name, version)
        mapping = self.stages(name)
        mapping[stage] = version
        self._write_stages(name, mapping)

    def clear_stage(self, name: str, stage: str) -> bool:
        """Remove a stage alias (canary rollback); returns whether it existed."""
        stage = self._check_stage(stage)
        mapping = self.stages(name)
        existed = mapping.pop(stage, None) is not None
        if existed:
            self._write_stages(name, mapping)
        return existed

    def promote(self, name: str, version: str, *, stage: str = "prod") -> str:
        """Point ``stage`` (default ``prod``) at ``version``; clears ``canary``
        when promoting a canary version to something else.

        Returns the resolved version, so ``promote(name, "canary")`` both
        flips prod and reports what it now serves.
        """
        resolved = self._resolve_version(name, version)
        self.set_stage(name, stage, resolved)
        if stage != "canary" and self.stage_version(name, "canary") == resolved:
            self.clear_stage(name, "canary")
        return resolved

    def _write_stages(self, name: str, mapping: Dict[str, str]) -> None:
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        payload = (json.dumps(dict(sorted(mapping.items())), indent=2) + "\n").encode(
            "utf-8"
        )
        _atomic_write_bytes(directory / "stages.json", payload)

    # -- read side ---------------------------------------------------------------
    def get(self, name: str, version: Optional[str] = None, *, warm: bool = True) -> Surrogate:
        """The model registered as ``name``/``version`` (latest when omitted).

        ``version`` may be a literal ``"vN"`` or a stage alias.  Loads from
        disk on first access — verifying the snapshot's SHA-256 sidecar and
        raising :class:`RegistryCorrupted` on tampering or pickle failure —
        then serves from the in-memory cache.
        """
        version = self._resolve_version(name, version)
        key = (name, version)
        cached = self._cache.get(key)
        if cached is None:
            model, warmed = self._load_verified(name, version), False
        else:
            model, warmed = cached
        if warm and not warmed:
            model.warm_serving_caches(self.warm_chunk_rows)
            warmed = True
        self._cache[key] = (model, warmed)
        return model

    def verify(self, name: str, version: Optional[str] = None) -> str:
        """Re-hash a snapshot on disk against its sidecar; returns the digest.

        Raises :class:`RegistryCorrupted` on mismatch (or a missing sidecar —
        an explicit verify demands provable integrity, unlike the lenient
        legacy path of :meth:`get`).
        """
        version = self._resolve_version(name, version)
        payload = self.path_of(name, version).read_bytes()
        digest = _sha256(payload)
        sidecar = self.digest_path_of(name, version)
        if not sidecar.exists():
            raise RegistryCorrupted(
                f"{name}/{version} has no SHA-256 sidecar to verify against"
            )
        expected = sidecar.read_text(encoding="ascii").strip()
        if digest != expected:
            raise RegistryCorrupted(
                f"{name}/{version} snapshot is corrupted: SHA-256 {digest} != "
                f"recorded {expected}"
            )
        return digest

    def _load_verified(self, name: str, version: str) -> Surrogate:
        path = self.path_of(name, version)
        payload = path.read_bytes()
        sidecar = self.digest_path_of(name, version)
        if sidecar.exists():
            expected = sidecar.read_text(encoding="ascii").strip()
            digest = _sha256(payload)
            if digest != expected:
                raise RegistryCorrupted(
                    f"{name}/{version} snapshot is corrupted: SHA-256 {digest} != "
                    f"recorded {expected}"
                )
        try:
            return Surrogate.from_snapshot(payload)
        except RegistryCorrupted:
            raise
        except Exception as exc:
            raise RegistryCorrupted(
                f"{name}/{version} snapshot failed to unpickle: {exc}"
            ) from exc

    def names(self) -> List[str]:
        """Registered model names, sorted."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self._version_numbers(entry.name)
        )

    def versions(self, name: str) -> List[str]:
        """Versions registered under ``name``, oldest first."""
        return [f"v{num}" for num in self._version_numbers(name)]

    def latest_version(self, name: str) -> str:
        """The highest version registered under ``name``."""
        return self._resolve_version(name, None)

    def path_of(self, name: str, version: str) -> Path:
        """Filesystem path of one snapshot."""
        return self.root / name / f"{version}.pkl"

    def digest_path_of(self, name: str, version: str) -> Path:
        """Filesystem path of one snapshot's SHA-256 sidecar."""
        return self.root / name / f"{version}.pkl.sha256"

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '.', '_', '+', '-'"
            )

    @staticmethod
    def _check_stage(stage: str) -> str:
        if _VERSION_RE.match(stage) or not _STAGE_RE.match(stage):
            raise ValueError(
                f"invalid stage {stage!r}: a letter then letters/digits/'_'/'-' "
                "(and not a version literal)"
            )
        return stage

    def _version_numbers(self, name: str) -> List[int]:
        directory = self.root / name
        if not directory.is_dir():
            return []
        numbers = []
        for path in directory.glob("v*.pkl"):
            match = _VERSION_RE.match(path.stem)
            if match:
                numbers.append(int(match.group(1)))
        return sorted(numbers)

    def _latest_number(self, name: str) -> int:
        numbers = self._version_numbers(name)
        return numbers[-1] if numbers else 0

    def _resolve_version(self, name: str, version: Optional[str]) -> str:
        self._check_name(name)
        numbers = self._version_numbers(name)
        if version is None:
            if not numbers:
                raise KeyError(f"no model registered under {name!r}")
            return f"v{numbers[-1]}"
        if not _VERSION_RE.match(version):
            # A stage alias: resolve it through stages.json, then recurse on
            # the literal version it points at.
            staged = self.stages(name).get(version)
            if staged is None:
                known = ", ".join(sorted(self.stages(name))) or "none"
                raise KeyError(
                    f"{name!r} has no stage {version!r} (stages: {known})"
                )
            version = staged
        if int(version[1:]) not in numbers:
            known = ", ".join(f"v{n}" for n in numbers) or "none"
            raise KeyError(f"{name!r} has no version {version!r} (known: {known})")
        return version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry({str(self.root)!r}, models={self.names()})"
